package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"pioman/internal/adapt"
	"pioman/internal/cpuset"
	"pioman/internal/spinlock"
	"pioman/internal/stats"
	"pioman/internal/topology"
	"pioman/internal/trace"
)

// Config parameterizes an Engine.
type Config struct {
	// Topology is the machine the queue hierarchy is mapped onto.
	// Defaults to topology.Host().
	Topology *topology.Topology
	// QueueKind selects the queue protection strategy (default spinlock).
	QueueKind QueueKind
	// SingleGlobalQueue disables the hierarchy and stores every task in
	// one global list — the "naive solution" / big-lock baseline of §III
	// used by the ablation benchmarks.
	SingleGlobalQueue bool
	// AlwaysLock disables Algorithm 2's unlocked emptiness pre-check, for
	// the double-checked-locking ablation.
	AlwaysLock bool
	// DrainBatch bounds how many tasks one queue-lock acquisition may
	// detach during Schedule. 0 or negative means the default (32); 1
	// degenerates to the seed's lock-per-task behaviour, kept reachable
	// for comparison. With AdaptiveDrain set this is the starting point
	// of each queue's controller rather than a fixed size.
	DrainBatch int
	// AdaptiveDrain replaces the fixed drain batch with a per-queue
	// feedback controller (internal/adapt): sustained draining by
	// latency-budgeted callers (ScheduleOne) halves a queue's batch
	// toward DrainMin, sustained more-than-a-batch backlog doubles it
	// toward DrainMax. Queues drained by throughput callers amortize
	// more tasks per lock acquisition; queues serving context-switch
	// keypoints keep their critical sections minimal.
	AdaptiveDrain bool
	// DrainMin is the adaptive controller's lower bound. Zero or
	// negative normalizes to the documented default 1.
	DrainMin int
	// DrainMax is the adaptive controller's upper bound. Zero, negative
	// or below DrainMin normalizes to the documented default
	// 8×DrainBatch (256 for the default batch).
	DrainMax int
	// Steal configures work stealing across sibling leaf queues (see
	// steal.go). The zero value disables stealing.
	Steal StealConfig
	// LatencyStats records per-CPU latency histograms (stats.Histogram)
	// of drain passes and steal attempts, read back via DrainLatency and
	// StealLatency. Off by default: the record path is cheap (one clock
	// read and one bucket increment per pass) but not free.
	LatencyStats bool
	// Trace attaches a flight recorder: task dispatches and successful
	// steals are recorded under the executing CPU's ring. Nil (the
	// default) leaves every hot-path hook as a single nil check — the
	// disabled path is guarded by the obs benchmark bar.
	Trace *trace.Recorder
}

// normalized returns the config with every out-of-range knob replaced
// by its documented default, so a zero or nonsense value misbehaves
// loudly in exactly one place (here) instead of silently downstream:
//
//   - DrainBatch ≤ 0 → 32 (defaultDrainBatch);
//   - DrainMin ≤ 0 → 1;
//   - DrainMax ≤ 0 or < DrainMin → max(8×DrainBatch, DrainMin);
//   - Steal.BatchFraction outside (0, 1] (NaN included) → 0.5, except
//     values above 1, which clamp to 1 (one full drain batch).
func (cfg Config) normalized() Config {
	if cfg.DrainBatch <= 0 {
		cfg.DrainBatch = defaultDrainBatch
	}
	if cfg.DrainMin <= 0 {
		cfg.DrainMin = 1
	}
	if cfg.DrainMax <= 0 || cfg.DrainMax < cfg.DrainMin {
		cfg.DrainMax = 8 * cfg.DrainBatch
		if cfg.DrainMax < cfg.DrainMin {
			cfg.DrainMax = cfg.DrainMin
		}
	}
	f := cfg.Steal.BatchFraction
	switch {
	case f > 1:
		cfg.Steal.BatchFraction = 1
	case !(f > 0): // catches zero, negatives and NaN
		cfg.Steal.BatchFraction = 0.5
	}
	return cfg
}

// StealPolicy selects how far an out-of-work CPU may reach when it
// steals tasks from other cores' leaf queues.
type StealPolicy int

const (
	// StealOff disables work stealing (the default): a CPU only ever
	// drains the queues on its own path to the root.
	StealOff StealPolicy = iota
	// StealSiblings lets a CPU steal only from leaf queues sharing its
	// immediate topology parent — the cores it shares a cache or chip
	// with, where migration costs one intra-domain cache transfer.
	StealSiblings
	// StealFullTree lets a CPU walk outward through every topology
	// level, stealing from the nearest backlogged leaf first and
	// crossing chip and NUMA boundaries only as a last resort.
	StealFullTree
)

// String returns the policy name.
func (p StealPolicy) String() string {
	switch p {
	case StealOff:
		return "off"
	case StealSiblings:
		return "siblings"
	case StealFullTree:
		return "full-tree"
	default:
		return "unknown"
	}
}

// StealConfig parameterizes work stealing.
type StealConfig struct {
	// Policy selects the steal reach (default StealOff).
	Policy StealPolicy
	// BatchFraction is the fraction of the engine's drain batch one
	// successful steal may detach from a victim, in (0, 1]. 0 means the
	// default 0.5 — a half-batch, so a thief relieves a backlogged
	// victim without emptying it and destroying the victim's own
	// locality. The result is clamped to at least one task.
	BatchFraction float64
	// Adaptive scales each thief's steal window by its observed
	// hit-rate (a per-CPU EWMA of whether a steal migrated anything):
	// a CPU whose steals keep coming back empty-handed — the victim's
	// visible backlog is pinned, or races keep losing it — shrinks its
	// window toward one task, so fruitless-steal-prone topologies stop
	// over-draining (and re-enqueueing) their victims' backlogs. A
	// thief whose steals land keeps the full BatchFraction window. The
	// estimate starts optimistic (full window) and recovers as soon as
	// steals succeed again.
	Adaptive bool
}

// defaultDrainBatch is the Schedule batch size when Config.DrainBatch is
// unset: large enough to amortize a lock round-trip over many tasks under
// load, small enough not to starve sibling cores of a busy queue.
const defaultDrainBatch = 32

// counterShard is one CPU's slice of the engine-wide execution-side
// counters, padded to a cache line so cores bumping their own shard
// never false-share. Executions are always counted on the shard of the
// executing CPU, which makes the per-shard execution count double as
// the ExecPerCPU stat. The submit-side counter has no shard at all:
// Stats derives it from the per-queue enqueue counters (see Stats), so
// Submit pays zero dedicated counter updates.
type counterShard struct {
	executions atomic.Uint64
	requeues   atomic.Uint64
	skips      atomic.Uint64
	// Steal instrumentation, counted on the thief's shard: drains
	// attempted on victim queues, attempts that migrated at least one
	// task, and stolen tasks executed here.
	stealAttempts atomic.Uint64
	stealHits     atomic.Uint64
	stealTasks    atomic.Uint64
	_             [spinlock.CacheLineSize - 48]byte
}

// paddedBool is an atomic.Bool on its own cache line; the per-CPU idle
// flags are written from every idle-hook transition, so neighbouring
// CPUs must not share a line.
type paddedBool struct {
	v atomic.Bool
	_ [spinlock.CacheLineSize - 1]byte
}

// Engine is the task manager. It owns one queue per topology node and
// serves Submit (place a task on the deepest covering queue) and Schedule
// (Algorithm 1: drain queues from the local core up to the global root).
//
// All methods are safe for concurrent use.
type Engine struct {
	cfg   Config
	topo  *topology.Topology
	batch int

	// queues[i] corresponds to topo.Nodes()[i] (minus skipped nodes in
	// single-global-queue mode).
	queues []*Queue
	// byID[n.ID] is the queue of topology node n — a dense array indexed
	// by Node.ID, replacing map hashing on the submit path.
	byID []*Queue
	// leaf[cpu] is the queue a task pinned to exactly {cpu} lands on: the
	// per-core leaf queue (the global queue in single-global-queue mode).
	// Together with byID this makes placement of the common case — a
	// single-CPU set, as SubmitToIdle always produces — zero tree walks
	// and zero map lookups.
	leaf []*Queue
	// rootQ is the global queue (empty CPU sets, uncoverable sets).
	rootQ *Queue
	// paths[cpu] is the queue scan order for that CPU: per-core first,
	// global last.
	paths [][]*Queue
	// stealGroups[cpu] holds the candidate victim leaf queues for that
	// CPU, grouped by topological distance (topology.StealOrder):
	// sibling cores first, then cousins, NUMA-remote cores last. The
	// StealSiblings policy restricts the walk to the first group.
	stealGroups [][][]*Queue
	// stealBatch is how many tasks one steal may detach from a victim
	// (Config.Steal.BatchFraction of the drain batch, default half).
	stealBatch int
	// stealRate tracks each thief CPU's steal hit-rate (Steal.Adaptive;
	// nil otherwise). Each shard is its CPU's private cache line, so
	// the feedback adds no cross-core traffic to the steal path.
	stealRate *adapt.Sharded

	idle   []paddedBool
	notify atomic.Pointer[func(cpuset.Set)]

	// Urgent (preemptive) task support — see urgent.go.
	urgentQ     atomic.Pointer[Queue]
	interrupt   atomic.Pointer[func(cs cpuset.Set)]
	urgentCount atomic.Uint64

	// shards holds the engine-wide execution-side counters sharded per
	// CPU; each scheduling core only ever touches its own cache line.
	shards []counterShard

	// latShards holds per-CPU drain/steal latency histograms
	// (Config.LatencyStats; nil otherwise). Sharded like the counters so
	// the record path stays core-local; the small lock exists because the
	// engine allows concurrent Schedule calls on behalf of one CPU.
	latShards []latShard

	// rec is the optional flight recorder (Config.Trace). Hot paths
	// guard every use with a nil check so the disabled engine pays one
	// predictable branch, nothing more.
	rec *trace.Recorder
}

// latShard is one CPU's latency instrumentation: histograms of how long
// its drain passes and steal attempts took, in nanoseconds.
type latShard struct {
	mu    spinlock.SpinLock
	drain stats.Histogram
	steal stats.Histogram
}

// record adds one sample to the shard's drain or steal histogram.
func (s *latShard) record(steal bool, d time.Duration) {
	s.mu.Lock()
	if steal {
		s.steal.Record(int64(d))
	} else {
		s.drain.Record(int64(d))
	}
	s.mu.Unlock()
}

// New builds an engine for the configured topology. Out-of-range
// batching and stealing knobs are normalized to their documented
// defaults first (see Config.normalized).
func New(cfg Config) *Engine {
	if cfg.Topology == nil {
		cfg.Topology = topology.Host()
	}
	cfg = cfg.normalized()
	batch := cfg.DrainBatch
	e := &Engine{
		cfg:    cfg,
		topo:   cfg.Topology,
		batch:  batch,
		byID:   make([]*Queue, len(cfg.Topology.Nodes())),
		idle:   make([]paddedBool, cfg.Topology.NCPUs),
		shards: make([]counterShard, cfg.Topology.NCPUs),
		rec:    cfg.Trace,
	}
	for _, n := range e.topo.Nodes() {
		if cfg.SingleGlobalQueue && n != e.topo.Root {
			continue
		}
		q := newQueue(n, cfg.QueueKind)
		q.ctrl.Init(batch, cfg.DrainMin, cfg.DrainMax)
		e.queues = append(e.queues, q)
		e.byID[n.ID] = q
	}
	if cfg.Steal.Adaptive && cfg.Steal.Policy != StealOff {
		// Primed optimistic: the first miss decays the rate gradually
		// (1 → 0.75 → …) instead of collapsing the window to one task.
		e.stealRate = adapt.NewSharded(cfg.Topology.NCPUs, 0)
		e.stealRate.Prime(1)
	}
	if cfg.LatencyStats {
		e.latShards = make([]latShard, cfg.Topology.NCPUs)
	}
	e.rootQ = e.byID[e.topo.Root.ID]
	e.leaf = make([]*Queue, e.topo.NCPUs)
	e.paths = make([][]*Queue, e.topo.NCPUs)
	for cpu := 0; cpu < e.topo.NCPUs; cpu++ {
		if cfg.SingleGlobalQueue {
			e.leaf[cpu] = e.rootQ
			e.paths[cpu] = []*Queue{e.rootQ}
			continue
		}
		e.leaf[cpu] = e.byID[e.topo.CoreNode(cpu).ID]
		for _, n := range e.topo.PathToRoot(cpu) {
			e.paths[cpu] = append(e.paths[cpu], e.byID[n.ID])
		}
	}
	e.initSteal()
	return e
}

// Topology returns the machine the engine is mapped onto.
func (e *Engine) Topology() *topology.Topology { return e.topo }

// Queues returns every queue, ordered like Topology().Nodes(). In
// single-global-queue mode there is exactly one.
func (e *Engine) Queues() []*Queue { return e.queues }

// QueueFor returns the queue a task with the given CPU set would be
// placed on. Single-CPU sets and the empty set — the two cases every
// SubmitToIdle produces — resolve through precomputed tables;
// FindCovering's tree walk is reserved for genuine multi-CPU sets.
func (e *Engine) QueueFor(cs cpuset.Set) *Queue {
	if cpu, ok := cs.Single(); ok && cpu < len(e.leaf) {
		return e.leaf[cpu]
	}
	return e.queueForSlow(cs)
}

// queueForSlow resolves placement for the empty set and multi-CPU sets.
func (e *Engine) queueForSlow(cs cpuset.Set) *Queue {
	if e.cfg.SingleGlobalQueue || cs.IsEmpty() {
		return e.rootQ
	}
	return e.byID[e.topo.FindCovering(cs).ID]
}

// submitPrep is the shared validation prologue of every submission
// entry point: reject nil bodies and transition StateFree →
// StateSubmitted, naming the calling operation in any error.
func submitPrep(t *Task, op string) error {
	if t.Fn == nil {
		return fmt.Errorf("core: %s of task with nil Fn", op)
	}
	if !t.state.CompareAndSwap(uint32(StateFree), uint32(StateSubmitted)) {
		return fmt.Errorf("core: %s of task in state %v", op, t.State())
	}
	return nil
}

// Submit places the task on the queue of the deepest topology node
// covering its CPU set (the global queue for the empty set). The task
// must be in StateFree and have a non-nil Fn.
func (e *Engine) Submit(t *Task) error {
	if err := submitPrep(t, "Submit"); err != nil {
		return err
	}
	// Placement, flattened from QueueFor so the pinned fast path — the
	// common case — costs one popcount check and one table load inside
	// this frame.
	var q *Queue
	if cpu, ok := t.CPUSet.Single(); ok && cpu < len(e.leaf) {
		q = e.leaf[cpu]
	} else {
		q = e.queueForSlow(t.CPUSet)
	}
	e.submitTo(t, q)
	return nil
}

// submitTo is the shared tail of every submission entry point: record
// the home queue, enqueue, and fire the wakeup notifier. The caller has
// already validated the task and transitioned it to StateSubmitted.
func (e *Engine) submitTo(t *Task, q *Queue) {
	if rec := e.rec; rec != nil {
		t.submitTS = rec.Now()
	}
	t.home = q
	q.enqueue(t)
	if fn := e.notify.Load(); fn != nil {
		(*fn)(t.CPUSet)
	}
}

// SetNotifier installs a callback invoked after every successful Submit
// with the task's CPU set. The thread scheduler uses it to wake idle VPs
// that may run the new task. Safe to call concurrently with Submit.
func (e *Engine) SetNotifier(fn func(cpuset.Set)) {
	if fn == nil {
		e.notify.Store(nil)
		return
	}
	e.notify.Store(&fn)
}

// MustSubmit is Submit that panics on error, for call sites where a
// submission failure is a programming bug.
func (e *Engine) MustSubmit(t *Task) {
	if err := e.Submit(t); err != nil {
		panic(err)
	}
}

// SubmitToIdle implements NewMadeleine's request-submission policy
// (§IV-B): find the idle core nearest to home; if one exists, pin the
// task to it, otherwise place the task in the global queue so that the
// first core to become available picks it up.
func (e *Engine) SubmitToIdle(t *Task, home int) error {
	if cpu := e.FindIdleNear(home); cpu >= 0 {
		t.CPUSet = cpuset.New(cpu)
	} else {
		t.CPUSet = cpuset.Set{}
	}
	return e.Submit(t)
}

// SetIdle records whether a CPU is currently idle. The thread scheduler
// calls this from its idle hook.
func (e *Engine) SetIdle(cpu int, idle bool) {
	if cpu >= 0 && cpu < len(e.idle) {
		e.idle[cpu].v.Store(idle)
	}
}

// IsIdle reports whether a CPU was last marked idle.
func (e *Engine) IsIdle(cpu int) bool {
	return cpu >= 0 && cpu < len(e.idle) && e.idle[cpu].v.Load()
}

// FindIdleNear returns the idle CPU topologically nearest to home
// (excluding home itself), or -1 when every other core is busy. Proximity
// is by walking up home's topology path, preferring cores that share the
// closest ancestor — minimizing cache effects, as §IV-B requires.
//
// Among equally-near idle CPUs the one with the fewest executions so far
// (the per-CPU sharded counters read for free) wins: placement feedback
// that spreads pinned submissions away from cores that have already
// absorbed the most work, instead of always re-picking the lowest CPU
// index.
func (e *Engine) FindIdleNear(home int) int {
	if home < 0 || home >= e.topo.NCPUs {
		home = 0
	}
	seen := cpuset.New(home)
	for _, node := range e.topo.PathToRoot(home) {
		found := -1
		var foundExec uint64
		node.CPUSet.ForEach(func(cpu int) bool {
			if !seen.IsSet(cpu) && e.idle[cpu].v.Load() {
				ex := e.shards[cpu].executions.Load()
				if found < 0 || ex < foundExec {
					found, foundExec = cpu, ex
				}
			}
			return true
		})
		if found >= 0 {
			return found
		}
		seen = cpuset.Or(seen, node.CPUSet)
	}
	return -1
}

// Schedule implements the paper's Algorithm 1 (Task_Schedule) for the
// given CPU: scan the per-core queue first, then each ancestor queue up
// to the global queue, executing every task found. Repeat tasks whose
// body reports incompletion are re-enqueued on their home queue. Tasks
// whose CPU set excludes this CPU are put back and skipped.
//
// Each queue is drained at most its length-at-entry times per call so a
// persistent Repeat task cannot livelock the caller. Returns the number
// of task executions performed.
func (e *Engine) Schedule(cpu int) int {
	return e.schedule(cpu, -1)
}

// ScheduleOne executes at most one task on behalf of cpu, returning
// whether one ran. Thread-scheduler hooks with tight latency budgets
// (context switches, timer ticks) use this entry point.
func (e *Engine) ScheduleOne(cpu int) bool {
	return e.schedule(cpu, 1) > 0
}

func (e *Engine) schedule(cpu int, max int) int {
	if cpu < 0 || cpu >= len(e.paths) {
		return 0
	}
	// Urgent (preemptive) tasks run before anything hierarchical.
	ran := e.scheduleUrgent(cpu, max)
	if max > 0 && ran >= max {
		return ran
	}
	for _, q := range e.paths[cpu] {
		// Fast skip of empty queues keeps Algorithm 1's common case — a
		// scan over an idle hierarchy — free of calls and locks: one
		// atomic head load per queue. This skip IS Algorithm 2's
		// unlocked notempty() check, so the AlwaysLock ablation disables
		// it and pays a lock acquisition per queue to discover
		// emptiness, exactly the naive Get_Task the paper argues
		// against.
		if q.Empty() && !e.cfg.AlwaysLock {
			continue
		}
		budget := -1
		if max > 0 {
			budget = max - ran
		}
		if e.latShards != nil {
			start := time.Now()
			ran += e.drainQueue(q, cpu, budget, nil)
			e.latShards[cpu].record(false, time.Since(start))
		} else {
			ran += e.drainQueue(q, cpu, budget, nil)
		}
		if max > 0 && ran >= max {
			return ran
		}
	}
	// Only when the entire local path — leaf and every ancestor — yielded
	// nothing does the CPU reach outward and steal (steal.go). A CPU with
	// local work never pays the victim-selection walk.
	if ran == 0 && e.cfg.Steal.Policy != StealOff {
		if e.latShards != nil {
			start := time.Now()
			ran = e.steal(cpu, max)
			e.latShards[cpu].record(true, time.Since(start))
		} else {
			ran = e.steal(cpu, max)
		}
	}
	return ran
}

// rehomeChain accumulates CPU-set-mismatched tasks during a drain and
// re-enqueues each on the queue its CPU set maps to under
// deepest-covering placement — usually the queue it was drained from
// (tasks on ancestor queues are correctly placed by construction), in
// which case the whole batch still costs one chained append. When
// locality-first placement (SubmitLocal) parked a task somewhere its
// owner can never run it, any scan that touches it repairs the
// placement instead of bouncing it on the same unreachable queue.
// Task.home follows, so Repeat re-enqueues stay repaired.
//
// A non-nil pin overrides the placement rule: every task goes back to
// that queue and keeps its home. The urgent queue needs this — an
// urgent task skipped by a CPU outside its set must stay urgent, not
// be demoted into the hierarchy.
type rehomeChain struct {
	e          *Engine
	pin        *Queue
	head, tail *Task
	dest       *Queue
	n          int // tasks in the open chain
	total      int // tasks re-homed over the chain's lifetime
}

// add appends a mismatched task; consecutive same-destination tasks
// share one locked append.
func (c *rehomeChain) add(t *Task) {
	dest := c.pin
	if dest == nil {
		dest = c.e.QueueFor(t.CPUSet)
		t.home = dest
	}
	if dest != c.dest {
		c.flush()
		c.dest = dest
	}
	if c.tail == nil {
		c.head = t
	} else {
		c.tail.next = t
	}
	c.tail = t
	c.n++
	c.total++
}

// flush re-enqueues the open chain, if any.
func (c *rehomeChain) flush() {
	if c.n > 0 {
		c.dest.enqueueChain(c.head, c.tail, c.n)
	}
	c.head, c.tail, c.n = nil, nil, 0
}

// drainQueue is the per-queue portion of Algorithm 1 with batched
// dequeue: tasks are detached drainBatch at a time under one lock
// acquisition, executed locally, and CPU-set mismatches are collected
// and re-homed with one locked append per destination run instead of
// one lock round-trip per task. budget < 0 means unbounded; otherwise
// at most budget tasks are executed (skips do not consume budget).
//
// The pass is bounded by the queue's length at entry: tasks re-enqueued
// during the scan (repeats, put-backs) are not reconsidered until the
// next call, so a persistent Repeat task cannot livelock the caller.
//
// pin, when non-nil, forces every put-back onto that queue instead of
// re-homing by CPU set (see rehomeChain); the urgent queue drains with
// pin == itself so skipped urgent tasks keep their priority.
//
// Under Config.AdaptiveDrain the batch size is the queue's controller
// value instead of the engine constant, and the pass reports back: a
// budgeted drain that ran something is a latency signal, an unbudgeted
// drain that processed more than one full batch is a backlog signal.
func (e *Engine) drainQueue(q *Queue, cpu int, budget int, pin *Queue) int {
	bound := q.Len()
	if bound == 0 {
		if !e.cfg.AlwaysLock {
			return 0
		}
		// Naive Get_Task: take the lock even to discover emptiness.
		bound = 1
	}
	batch := e.batch
	if e.cfg.AdaptiveDrain {
		batch = q.ctrl.Batch()
	}
	ran, processed := 0, 0
	pb := rehomeChain{e: e, pin: pin}
	for processed < bound {
		n := bound - processed
		if n > batch {
			n = batch
		}
		if budget >= 0 && n > budget-ran {
			// Never detach more runnable tasks than we may execute;
			// skipped tasks do not count, so the loop re-drains if the
			// whole batch turned out to be put-backs.
			n = budget - ran
		}
		head, got := q.drain(n, e.cfg.AlwaysLock)
		if got == 0 {
			break
		}
		processed += got
		for t := head; t != nil; {
			next := t.next
			t.next = nil
			if !t.CPUSet.IsEmpty() && !t.CPUSet.IsSet(cpu) {
				// Not allowed here (possible for ancestor queues holding
				// tasks whose CPU set is a strict subset): put it back.
				pb.add(t)
			} else {
				e.run(t, cpu)
				ran++
			}
			t = next
		}
		if budget >= 0 && ran >= budget {
			break
		}
	}
	pb.flush()
	if pb.total > 0 {
		e.shards[cpu].skips.Add(uint64(pb.total))
	}
	if e.cfg.AdaptiveDrain && ran > 0 {
		if budget >= 0 {
			q.ctrl.Latency()
		} else if processed > batch {
			q.ctrl.Backlog()
		}
	}
	return ran
}

// run executes one dequeued task on cpu and routes it to completion or
// re-enqueue.
func (e *Engine) run(t *Task, cpu int) {
	t.state.Store(uint32(StateRunning))
	t.lastCPU.Store(int64(cpu))
	runs := t.runs.Add(1)
	e.shards[cpu].executions.Add(1)
	if r := e.rec; r != nil {
		var wait uint64
		if t.submitTS != 0 {
			if now := r.Now(); now > t.submitTS {
				wait = uint64(now - t.submitTS)
			}
		}
		r.Record(cpu, trace.EvTaskRun, runs, wait)
	}
	done := t.Fn(t.Arg)
	if t.Options&Repeat != 0 && !done {
		t.state.Store(uint32(StateSubmitted))
		e.shards[cpu].requeues.Add(1)
		if r := e.rec; r != nil {
			// Restamp: the next EvTaskRun's wait starts at this requeue.
			t.submitTS = r.Now()
		}
		t.home.enqueue(t)
		return
	}
	t.markDone()
}

// WaitActive waits for t to complete while executing pending tasks on
// behalf of cpu — the paper's overlap mechanism: a thread blocked on
// communication turns its core into a task-processing core.
func (e *Engine) WaitActive(t *Task, cpu int) {
	for !t.Done() {
		if e.Schedule(cpu) == 0 {
			// Nothing runnable here; let other goroutines progress.
			yield()
		}
	}
}

// Pending returns the total number of tasks currently enqueued across
// all queues, urgent queue included (approximate under concurrency).
func (e *Engine) Pending() int {
	n := 0
	for _, q := range e.queues {
		n += q.Len()
	}
	if uq := e.urgentQ.Load(); uq != nil {
		n += uq.Len()
	}
	return n
}

// Stats is a snapshot of engine counters.
type Stats struct {
	Submitted  uint64   // Submit calls accepted
	Executions uint64   // task body invocations
	Requeues   uint64   // Repeat re-enqueues
	Skips      uint64   // dequeues put back due to CPU-set mismatch
	ExecPerCPU []uint64 // executions indexed by CPU

	// StealAttempts counts drains attempted on victim queues; StealHits
	// counts attempts that migrated at least one task; StealTasks counts
	// stolen tasks executed by a thief CPU (StealTasks ≤ Executions).
	StealAttempts uint64
	StealHits     uint64
	StealTasks    uint64
	// StealPerCPU is the stolen-task execution count indexed by the
	// *thief* CPU; its sum equals StealTasks.
	StealPerCPU []uint64

	// BatchGrows and BatchShrinks count adaptive drain-batch moves
	// across all queues (urgent queue included): doublings under
	// sustained backlog and halvings under sustained latency-budgeted
	// draining. Zero unless Config.AdaptiveDrain is set.
	BatchGrows   uint64
	BatchShrinks uint64
}

// Stats returns a snapshot of the engine counters, aggregated across the
// per-CPU shards and per-queue counters.
//
// Submitted is derived rather than counted: every accepted Submit
// enqueues exactly once, and the only other enqueue sources are Repeat
// re-enqueues and CPU-set put-backs, so
//
//	Submitted = Σ Queue.Enqueues − Requeues − Skips.
//
// This keeps the submit hot path free of any dedicated counter update.
// Under concurrency the snapshot is approximate (counters are read
// independently), exactly like the seed's global counters were.
func (e *Engine) Stats() Stats {
	s := Stats{
		ExecPerCPU:  make([]uint64, len(e.shards)),
		StealPerCPU: make([]uint64, len(e.shards)),
	}
	for i := range e.shards {
		sh := &e.shards[i]
		ex := sh.executions.Load()
		s.Executions += ex
		s.ExecPerCPU[i] = ex
		s.Requeues += sh.requeues.Load()
		s.Skips += sh.skips.Load()
		st := sh.stealTasks.Load()
		s.StealTasks += st
		s.StealPerCPU[i] = st
		s.StealAttempts += sh.stealAttempts.Load()
		s.StealHits += sh.stealHits.Load()
	}
	enq := uint64(0)
	for _, q := range e.queues {
		enq += q.Enqueues()
		s.BatchGrows += q.ctrl.Grows()
		s.BatchShrinks += q.ctrl.Shrinks()
	}
	if uq := e.urgentQ.Load(); uq != nil {
		enq += uq.Enqueues()
		s.BatchGrows += uq.ctrl.Grows()
		s.BatchShrinks += uq.ctrl.Shrinks()
	}
	if total := s.Requeues + s.Skips; enq >= total {
		s.Submitted = enq - total
	}
	return s
}

// DrainLatency returns the merged drain-pass latency histogram across
// every CPU shard, in nanoseconds. Empty unless Config.LatencyStats.
func (e *Engine) DrainLatency() stats.Histogram { return e.mergeLatency(false) }

// StealLatency returns the merged steal-attempt latency histogram
// across every CPU shard, in nanoseconds. Empty unless
// Config.LatencyStats (and a steal policy is enabled).
func (e *Engine) StealLatency() stats.Histogram { return e.mergeLatency(true) }

func (e *Engine) mergeLatency(steal bool) stats.Histogram {
	var out stats.Histogram
	for i := range e.latShards {
		sh := &e.latShards[i]
		sh.mu.Lock()
		if steal {
			out.Merge(&sh.steal)
		} else {
			out.Merge(&sh.drain)
		}
		sh.mu.Unlock()
	}
	return out
}

// ResetStats zeroes the engine counters and every queue's
// instrumentation — spinlock, mutex and lock-free alike, the urgent
// queue included — so ablation runs start from clean counters. Tasks
// still queued at reset time stay schedulable and are accounted as if
// submitted after the reset (warmup-then-reset with a Repeat poll task
// in flight is the expected usage).
func (e *Engine) ResetStats() {
	for i := range e.shards {
		sh := &e.shards[i]
		sh.executions.Store(0)
		sh.requeues.Store(0)
		sh.skips.Store(0)
		sh.stealAttempts.Store(0)
		sh.stealHits.Store(0)
		sh.stealTasks.Store(0)
	}
	for _, q := range e.queues {
		q.resetStats()
	}
	if uq := e.urgentQ.Load(); uq != nil {
		uq.resetStats()
	}
	for i := range e.latShards {
		sh := &e.latShards[i]
		sh.mu.Lock()
		sh.drain.Reset()
		sh.steal.Reset()
		sh.mu.Unlock()
	}
}
