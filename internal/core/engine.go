package core

import (
	"fmt"
	"sync/atomic"

	"pioman/internal/cpuset"
	"pioman/internal/spinlock"
	"pioman/internal/topology"
)

// Config parameterizes an Engine.
type Config struct {
	// Topology is the machine the queue hierarchy is mapped onto.
	// Defaults to topology.Host().
	Topology *topology.Topology
	// QueueKind selects the queue protection strategy (default spinlock).
	QueueKind QueueKind
	// SingleGlobalQueue disables the hierarchy and stores every task in
	// one global list — the "naive solution" / big-lock baseline of §III
	// used by the ablation benchmarks.
	SingleGlobalQueue bool
	// AlwaysLock disables Algorithm 2's unlocked emptiness pre-check, for
	// the double-checked-locking ablation.
	AlwaysLock bool
	// DrainBatch bounds how many tasks one queue-lock acquisition may
	// detach during Schedule. 0 means the default (32); 1 degenerates to
	// the seed's lock-per-task behaviour, kept reachable for comparison.
	DrainBatch int
}

// defaultDrainBatch is the Schedule batch size when Config.DrainBatch is
// unset: large enough to amortize a lock round-trip over many tasks under
// load, small enough not to starve sibling cores of a busy queue.
const defaultDrainBatch = 32

// counterShard is one CPU's slice of the engine-wide execution-side
// counters, padded to a cache line so cores bumping their own shard
// never false-share. Executions are always counted on the shard of the
// executing CPU, which makes the per-shard execution count double as
// the ExecPerCPU stat. The submit-side counter has no shard at all:
// Stats derives it from the per-queue enqueue counters (see Stats), so
// Submit pays zero dedicated counter updates.
type counterShard struct {
	executions atomic.Uint64
	requeues   atomic.Uint64
	skips      atomic.Uint64
	_          [spinlock.CacheLineSize - 24]byte
}

// paddedBool is an atomic.Bool on its own cache line; the per-CPU idle
// flags are written from every idle-hook transition, so neighbouring
// CPUs must not share a line.
type paddedBool struct {
	v atomic.Bool
	_ [spinlock.CacheLineSize - 1]byte
}

// Engine is the task manager. It owns one queue per topology node and
// serves Submit (place a task on the deepest covering queue) and Schedule
// (Algorithm 1: drain queues from the local core up to the global root).
//
// All methods are safe for concurrent use.
type Engine struct {
	cfg   Config
	topo  *topology.Topology
	batch int

	// queues[i] corresponds to topo.Nodes()[i] (minus skipped nodes in
	// single-global-queue mode).
	queues []*Queue
	// byID[n.ID] is the queue of topology node n — a dense array indexed
	// by Node.ID, replacing map hashing on the submit path.
	byID []*Queue
	// leaf[cpu] is the queue a task pinned to exactly {cpu} lands on: the
	// per-core leaf queue (the global queue in single-global-queue mode).
	// Together with byID this makes placement of the common case — a
	// single-CPU set, as SubmitToIdle always produces — zero tree walks
	// and zero map lookups.
	leaf []*Queue
	// rootQ is the global queue (empty CPU sets, uncoverable sets).
	rootQ *Queue
	// paths[cpu] is the queue scan order for that CPU: per-core first,
	// global last.
	paths [][]*Queue

	idle   []paddedBool
	notify atomic.Pointer[func(cpuset.Set)]

	// Urgent (preemptive) task support — see urgent.go.
	urgentQ     atomic.Pointer[Queue]
	interrupt   atomic.Pointer[func(cs cpuset.Set)]
	urgentCount atomic.Uint64

	// shards holds the engine-wide execution-side counters sharded per
	// CPU; each scheduling core only ever touches its own cache line.
	shards []counterShard
}

// New builds an engine for the configured topology.
func New(cfg Config) *Engine {
	if cfg.Topology == nil {
		cfg.Topology = topology.Host()
	}
	batch := cfg.DrainBatch
	if batch <= 0 {
		batch = defaultDrainBatch
	}
	e := &Engine{
		cfg:    cfg,
		topo:   cfg.Topology,
		batch:  batch,
		byID:   make([]*Queue, len(cfg.Topology.Nodes())),
		idle:   make([]paddedBool, cfg.Topology.NCPUs),
		shards: make([]counterShard, cfg.Topology.NCPUs),
	}
	for _, n := range e.topo.Nodes() {
		if cfg.SingleGlobalQueue && n != e.topo.Root {
			continue
		}
		q := newQueue(n, cfg.QueueKind)
		e.queues = append(e.queues, q)
		e.byID[n.ID] = q
	}
	e.rootQ = e.byID[e.topo.Root.ID]
	e.leaf = make([]*Queue, e.topo.NCPUs)
	e.paths = make([][]*Queue, e.topo.NCPUs)
	for cpu := 0; cpu < e.topo.NCPUs; cpu++ {
		if cfg.SingleGlobalQueue {
			e.leaf[cpu] = e.rootQ
			e.paths[cpu] = []*Queue{e.rootQ}
			continue
		}
		e.leaf[cpu] = e.byID[e.topo.CoreNode(cpu).ID]
		for _, n := range e.topo.PathToRoot(cpu) {
			e.paths[cpu] = append(e.paths[cpu], e.byID[n.ID])
		}
	}
	return e
}

// Topology returns the machine the engine is mapped onto.
func (e *Engine) Topology() *topology.Topology { return e.topo }

// Queues returns every queue, ordered like Topology().Nodes(). In
// single-global-queue mode there is exactly one.
func (e *Engine) Queues() []*Queue { return e.queues }

// QueueFor returns the queue a task with the given CPU set would be
// placed on. Single-CPU sets and the empty set — the two cases every
// SubmitToIdle produces — resolve through precomputed tables;
// FindCovering's tree walk is reserved for genuine multi-CPU sets.
func (e *Engine) QueueFor(cs cpuset.Set) *Queue {
	if cpu, ok := cs.Single(); ok && cpu < len(e.leaf) {
		return e.leaf[cpu]
	}
	return e.queueForSlow(cs)
}

// queueForSlow resolves placement for the empty set and multi-CPU sets.
func (e *Engine) queueForSlow(cs cpuset.Set) *Queue {
	if e.cfg.SingleGlobalQueue || cs.IsEmpty() {
		return e.rootQ
	}
	return e.byID[e.topo.FindCovering(cs).ID]
}

// Submit places the task on the queue of the deepest topology node
// covering its CPU set (the global queue for the empty set). The task
// must be in StateFree and have a non-nil Fn.
func (e *Engine) Submit(t *Task) error {
	if t.Fn == nil {
		return fmt.Errorf("core: Submit of task with nil Fn")
	}
	if !t.state.CompareAndSwap(uint32(StateFree), uint32(StateSubmitted)) {
		return fmt.Errorf("core: Submit of task in state %v", t.State())
	}
	// Placement, flattened from QueueFor so the pinned fast path — the
	// common case — costs one popcount check and one table load inside
	// this frame.
	var q *Queue
	if cpu, ok := t.CPUSet.Single(); ok && cpu < len(e.leaf) {
		q = e.leaf[cpu]
	} else {
		q = e.queueForSlow(t.CPUSet)
	}
	t.home = q
	q.enqueue(t)
	if fn := e.notify.Load(); fn != nil {
		(*fn)(t.CPUSet)
	}
	return nil
}

// SetNotifier installs a callback invoked after every successful Submit
// with the task's CPU set. The thread scheduler uses it to wake idle VPs
// that may run the new task. Safe to call concurrently with Submit.
func (e *Engine) SetNotifier(fn func(cpuset.Set)) {
	if fn == nil {
		e.notify.Store(nil)
		return
	}
	e.notify.Store(&fn)
}

// MustSubmit is Submit that panics on error, for call sites where a
// submission failure is a programming bug.
func (e *Engine) MustSubmit(t *Task) {
	if err := e.Submit(t); err != nil {
		panic(err)
	}
}

// SubmitToIdle implements NewMadeleine's request-submission policy
// (§IV-B): find the idle core nearest to home; if one exists, pin the
// task to it, otherwise place the task in the global queue so that the
// first core to become available picks it up.
func (e *Engine) SubmitToIdle(t *Task, home int) error {
	if cpu := e.FindIdleNear(home); cpu >= 0 {
		t.CPUSet = cpuset.New(cpu)
	} else {
		t.CPUSet = cpuset.Set{}
	}
	return e.Submit(t)
}

// SetIdle records whether a CPU is currently idle. The thread scheduler
// calls this from its idle hook.
func (e *Engine) SetIdle(cpu int, idle bool) {
	if cpu >= 0 && cpu < len(e.idle) {
		e.idle[cpu].v.Store(idle)
	}
}

// IsIdle reports whether a CPU was last marked idle.
func (e *Engine) IsIdle(cpu int) bool {
	return cpu >= 0 && cpu < len(e.idle) && e.idle[cpu].v.Load()
}

// FindIdleNear returns the idle CPU topologically nearest to home
// (excluding home itself), or -1 when every other core is busy. Proximity
// is by walking up home's topology path, preferring cores that share the
// closest ancestor — minimizing cache effects, as §IV-B requires.
func (e *Engine) FindIdleNear(home int) int {
	if home < 0 || home >= e.topo.NCPUs {
		home = 0
	}
	seen := cpuset.New(home)
	for _, node := range e.topo.PathToRoot(home) {
		found := -1
		node.CPUSet.ForEach(func(cpu int) bool {
			if !seen.IsSet(cpu) && e.idle[cpu].v.Load() {
				found = cpu
				return false
			}
			return true
		})
		if found >= 0 {
			return found
		}
		seen = cpuset.Or(seen, node.CPUSet)
	}
	return -1
}

// Schedule implements the paper's Algorithm 1 (Task_Schedule) for the
// given CPU: scan the per-core queue first, then each ancestor queue up
// to the global queue, executing every task found. Repeat tasks whose
// body reports incompletion are re-enqueued on their home queue. Tasks
// whose CPU set excludes this CPU are put back and skipped.
//
// Each queue is drained at most its length-at-entry times per call so a
// persistent Repeat task cannot livelock the caller. Returns the number
// of task executions performed.
func (e *Engine) Schedule(cpu int) int {
	return e.schedule(cpu, -1)
}

// ScheduleOne executes at most one task on behalf of cpu, returning
// whether one ran. Thread-scheduler hooks with tight latency budgets
// (context switches, timer ticks) use this entry point.
func (e *Engine) ScheduleOne(cpu int) bool {
	return e.schedule(cpu, 1) > 0
}

func (e *Engine) schedule(cpu int, max int) int {
	if cpu < 0 || cpu >= len(e.paths) {
		return 0
	}
	// Urgent (preemptive) tasks run before anything hierarchical.
	ran := e.scheduleUrgent(cpu, max)
	if max > 0 && ran >= max {
		return ran
	}
	for _, q := range e.paths[cpu] {
		// Fast skip of empty queues keeps Algorithm 1's common case — a
		// scan over an idle hierarchy — free of calls and locks: one
		// atomic head load per queue. This skip IS Algorithm 2's
		// unlocked notempty() check, so the AlwaysLock ablation disables
		// it and pays a lock acquisition per queue to discover
		// emptiness, exactly the naive Get_Task the paper argues
		// against.
		if q.Empty() && !e.cfg.AlwaysLock {
			continue
		}
		budget := -1
		if max > 0 {
			budget = max - ran
		}
		ran += e.drainQueue(q, cpu, budget)
		if max > 0 && ran >= max {
			return ran
		}
	}
	return ran
}

// drainQueue is the per-queue portion of Algorithm 1 with batched
// dequeue: tasks are detached drainBatch at a time under one lock
// acquisition, executed locally, and CPU-set mismatches are collected
// and put back with one locked append per call instead of one lock
// round-trip per task. budget < 0 means unbounded; otherwise at most
// budget tasks are executed (skips do not consume budget).
//
// The pass is bounded by the queue's length at entry: tasks re-enqueued
// during the scan (repeats, put-backs) are not reconsidered until the
// next call, so a persistent Repeat task cannot livelock the caller.
func (e *Engine) drainQueue(q *Queue, cpu int, budget int) int {
	bound := q.Len()
	if bound == 0 {
		if !e.cfg.AlwaysLock {
			return 0
		}
		// Naive Get_Task: take the lock even to discover emptiness.
		bound = 1
	}
	ran, processed := 0, 0
	var pbHead, pbTail *Task // put-back chain for CPU-set mismatches
	pbN := 0
	for processed < bound {
		n := bound - processed
		if n > e.batch {
			n = e.batch
		}
		if budget >= 0 && n > budget-ran {
			// Never detach more runnable tasks than we may execute;
			// skipped tasks do not count, so the loop re-drains if the
			// whole batch turned out to be put-backs.
			n = budget - ran
		}
		head, got := q.drain(n, e.cfg.AlwaysLock)
		if got == 0 {
			break
		}
		processed += got
		for t := head; t != nil; {
			next := t.next
			t.next = nil
			if !t.CPUSet.IsEmpty() && !t.CPUSet.IsSet(cpu) {
				// Not allowed here (possible for ancestor queues holding
				// tasks whose CPU set is a strict subset): put it back.
				if pbTail == nil {
					pbHead = t
				} else {
					pbTail.next = t
				}
				pbTail = t
				pbN++
			} else {
				e.run(t, cpu)
				ran++
			}
			t = next
		}
		if budget >= 0 && ran >= budget {
			break
		}
	}
	if pbN > 0 {
		e.shards[cpu].skips.Add(uint64(pbN))
		q.enqueueChain(pbHead, pbTail, pbN)
	}
	return ran
}

// run executes one dequeued task on cpu and routes it to completion or
// re-enqueue.
func (e *Engine) run(t *Task, cpu int) {
	t.state.Store(uint32(StateRunning))
	t.lastCPU.Store(int64(cpu))
	t.runs.Add(1)
	e.shards[cpu].executions.Add(1)
	done := t.Fn(t.Arg)
	if t.Options&Repeat != 0 && !done {
		t.state.Store(uint32(StateSubmitted))
		e.shards[cpu].requeues.Add(1)
		t.home.enqueue(t)
		return
	}
	t.markDone()
}

// WaitActive waits for t to complete while executing pending tasks on
// behalf of cpu — the paper's overlap mechanism: a thread blocked on
// communication turns its core into a task-processing core.
func (e *Engine) WaitActive(t *Task, cpu int) {
	for !t.Done() {
		if e.Schedule(cpu) == 0 {
			// Nothing runnable here; let other goroutines progress.
			yield()
		}
	}
}

// Pending returns the total number of tasks currently enqueued across
// all queues, urgent queue included (approximate under concurrency).
func (e *Engine) Pending() int {
	n := 0
	for _, q := range e.queues {
		n += q.Len()
	}
	if uq := e.urgentQ.Load(); uq != nil {
		n += uq.Len()
	}
	return n
}

// Stats is a snapshot of engine counters.
type Stats struct {
	Submitted  uint64   // Submit calls accepted
	Executions uint64   // task body invocations
	Requeues   uint64   // Repeat re-enqueues
	Skips      uint64   // dequeues put back due to CPU-set mismatch
	ExecPerCPU []uint64 // executions indexed by CPU
}

// Stats returns a snapshot of the engine counters, aggregated across the
// per-CPU shards and per-queue counters.
//
// Submitted is derived rather than counted: every accepted Submit
// enqueues exactly once, and the only other enqueue sources are Repeat
// re-enqueues and CPU-set put-backs, so
//
//	Submitted = Σ Queue.Enqueues − Requeues − Skips.
//
// This keeps the submit hot path free of any dedicated counter update.
// Under concurrency the snapshot is approximate (counters are read
// independently), exactly like the seed's global counters were.
func (e *Engine) Stats() Stats {
	s := Stats{ExecPerCPU: make([]uint64, len(e.shards))}
	for i := range e.shards {
		sh := &e.shards[i]
		ex := sh.executions.Load()
		s.Executions += ex
		s.ExecPerCPU[i] = ex
		s.Requeues += sh.requeues.Load()
		s.Skips += sh.skips.Load()
	}
	enq := uint64(0)
	for _, q := range e.queues {
		enq += q.Enqueues()
	}
	if uq := e.urgentQ.Load(); uq != nil {
		enq += uq.Enqueues()
	}
	if total := s.Requeues + s.Skips; enq >= total {
		s.Submitted = enq - total
	}
	return s
}

// ResetStats zeroes the engine counters and every queue's
// instrumentation — spinlock, mutex and lock-free alike, the urgent
// queue included — so ablation runs start from clean counters. Tasks
// still queued at reset time stay schedulable and are accounted as if
// submitted after the reset (warmup-then-reset with a Repeat poll task
// in flight is the expected usage).
func (e *Engine) ResetStats() {
	for i := range e.shards {
		sh := &e.shards[i]
		sh.executions.Store(0)
		sh.requeues.Store(0)
		sh.skips.Store(0)
	}
	for _, q := range e.queues {
		q.resetStats()
	}
	if uq := e.urgentQ.Load(); uq != nil {
		uq.resetStats()
	}
}
