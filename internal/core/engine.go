package core

import (
	"fmt"
	"sync/atomic"

	"pioman/internal/cpuset"
	"pioman/internal/topology"
)

// Config parameterizes an Engine.
type Config struct {
	// Topology is the machine the queue hierarchy is mapped onto.
	// Defaults to topology.Host().
	Topology *topology.Topology
	// QueueKind selects the queue protection strategy (default spinlock).
	QueueKind QueueKind
	// SingleGlobalQueue disables the hierarchy and stores every task in
	// one global list — the "naive solution" / big-lock baseline of §III
	// used by the ablation benchmarks.
	SingleGlobalQueue bool
	// AlwaysLock disables Algorithm 2's unlocked emptiness pre-check, for
	// the double-checked-locking ablation.
	AlwaysLock bool
}

// Engine is the task manager. It owns one queue per topology node and
// serves Submit (place a task on the deepest covering queue) and Schedule
// (Algorithm 1: drain queues from the local core up to the global root).
//
// All methods are safe for concurrent use.
type Engine struct {
	cfg  Config
	topo *topology.Topology

	// queues[i] corresponds to topo.Nodes()[i].
	queues []*Queue
	byNode map[*topology.Node]*Queue
	// paths[cpu] is the queue scan order for that CPU: per-core first,
	// global last.
	paths [][]*Queue

	idle   []atomic.Bool
	notify atomic.Pointer[func(cpuset.Set)]

	// Urgent (preemptive) task support — see urgent.go.
	urgentQ     atomic.Pointer[Queue]
	interrupt   atomic.Pointer[func(cs cpuset.Set)]
	urgentCount atomic.Uint64

	submitted  atomic.Uint64
	executions atomic.Uint64
	requeues   atomic.Uint64
	skips      atomic.Uint64
	execPerCPU []atomic.Uint64
}

// New builds an engine for the configured topology.
func New(cfg Config) *Engine {
	if cfg.Topology == nil {
		cfg.Topology = topology.Host()
	}
	e := &Engine{
		cfg:        cfg,
		topo:       cfg.Topology,
		byNode:     make(map[*topology.Node]*Queue),
		idle:       make([]atomic.Bool, cfg.Topology.NCPUs),
		execPerCPU: make([]atomic.Uint64, cfg.Topology.NCPUs),
	}
	for _, n := range e.topo.Nodes() {
		if cfg.SingleGlobalQueue && n != e.topo.Root {
			continue
		}
		q := newQueue(n, cfg.QueueKind)
		e.queues = append(e.queues, q)
		e.byNode[n] = q
	}
	e.paths = make([][]*Queue, e.topo.NCPUs)
	for cpu := 0; cpu < e.topo.NCPUs; cpu++ {
		if cfg.SingleGlobalQueue {
			e.paths[cpu] = []*Queue{e.byNode[e.topo.Root]}
			continue
		}
		for _, n := range e.topo.PathToRoot(cpu) {
			e.paths[cpu] = append(e.paths[cpu], e.byNode[n])
		}
	}
	return e
}

// Topology returns the machine the engine is mapped onto.
func (e *Engine) Topology() *topology.Topology { return e.topo }

// Queues returns every queue, ordered like Topology().Nodes(). In
// single-global-queue mode there is exactly one.
func (e *Engine) Queues() []*Queue { return e.queues }

// QueueFor returns the queue a task with the given CPU set would be
// placed on.
func (e *Engine) QueueFor(cs cpuset.Set) *Queue {
	if e.cfg.SingleGlobalQueue {
		return e.byNode[e.topo.Root]
	}
	return e.byNode[e.topo.FindCovering(cs)]
}

// Submit places the task on the queue of the deepest topology node
// covering its CPU set (the global queue for the empty set). The task
// must be in StateFree and have a non-nil Fn.
func (e *Engine) Submit(t *Task) error {
	if t.Fn == nil {
		return fmt.Errorf("core: Submit of task with nil Fn")
	}
	if !t.state.CompareAndSwap(uint32(StateFree), uint32(StateSubmitted)) {
		return fmt.Errorf("core: Submit of task in state %v", t.State())
	}
	t.lastCPU.Store(-1)
	q := e.QueueFor(t.CPUSet)
	t.home = q
	e.submitted.Add(1)
	q.enqueue(t)
	if fn := e.notify.Load(); fn != nil {
		(*fn)(t.CPUSet)
	}
	return nil
}

// SetNotifier installs a callback invoked after every successful Submit
// with the task's CPU set. The thread scheduler uses it to wake idle VPs
// that may run the new task. Safe to call concurrently with Submit.
func (e *Engine) SetNotifier(fn func(cpuset.Set)) {
	if fn == nil {
		e.notify.Store(nil)
		return
	}
	e.notify.Store(&fn)
}

// MustSubmit is Submit that panics on error, for call sites where a
// submission failure is a programming bug.
func (e *Engine) MustSubmit(t *Task) {
	if err := e.Submit(t); err != nil {
		panic(err)
	}
}

// SubmitToIdle implements NewMadeleine's request-submission policy
// (§IV-B): find the idle core nearest to home; if one exists, pin the
// task to it, otherwise place the task in the global queue so that the
// first core to become available picks it up.
func (e *Engine) SubmitToIdle(t *Task, home int) error {
	if cpu := e.FindIdleNear(home); cpu >= 0 {
		t.CPUSet = cpuset.New(cpu)
	} else {
		t.CPUSet = cpuset.Set{}
	}
	return e.Submit(t)
}

// SetIdle records whether a CPU is currently idle. The thread scheduler
// calls this from its idle hook.
func (e *Engine) SetIdle(cpu int, idle bool) {
	if cpu >= 0 && cpu < len(e.idle) {
		e.idle[cpu].Store(idle)
	}
}

// IsIdle reports whether a CPU was last marked idle.
func (e *Engine) IsIdle(cpu int) bool {
	return cpu >= 0 && cpu < len(e.idle) && e.idle[cpu].Load()
}

// FindIdleNear returns the idle CPU topologically nearest to home
// (excluding home itself), or -1 when every other core is busy. Proximity
// is by walking up home's topology path, preferring cores that share the
// closest ancestor — minimizing cache effects, as §IV-B requires.
func (e *Engine) FindIdleNear(home int) int {
	if home < 0 || home >= e.topo.NCPUs {
		home = 0
	}
	seen := cpuset.New(home)
	for _, node := range e.topo.PathToRoot(home) {
		found := -1
		node.CPUSet.ForEach(func(cpu int) bool {
			if !seen.IsSet(cpu) && e.idle[cpu].Load() {
				found = cpu
				return false
			}
			return true
		})
		if found >= 0 {
			return found
		}
		seen = cpuset.Or(seen, node.CPUSet)
	}
	return -1
}

// Schedule implements the paper's Algorithm 1 (Task_Schedule) for the
// given CPU: scan the per-core queue first, then each ancestor queue up
// to the global queue, executing every task found. Repeat tasks whose
// body reports incompletion are re-enqueued on their home queue. Tasks
// whose CPU set excludes this CPU are put back and skipped.
//
// Each queue is drained at most its length-at-entry times per call so a
// persistent Repeat task cannot livelock the caller. Returns the number
// of task executions performed.
func (e *Engine) Schedule(cpu int) int {
	return e.schedule(cpu, -1)
}

// ScheduleOne executes at most one task on behalf of cpu, returning
// whether one ran. Thread-scheduler hooks with tight latency budgets
// (context switches, timer ticks) use this entry point.
func (e *Engine) ScheduleOne(cpu int) bool {
	return e.schedule(cpu, 1) > 0
}

func (e *Engine) schedule(cpu int, max int) int {
	if cpu < 0 || cpu >= len(e.paths) {
		return 0
	}
	// Urgent (preemptive) tasks run before anything hierarchical.
	ran := e.scheduleUrgent(cpu, max)
	if max > 0 && ran >= max {
		return ran
	}
	for _, q := range e.paths[cpu] {
		// Bound the pass: tasks re-enqueued during this scan (repeats or
		// CPU-set mismatches) are not reconsidered until the next call.
		bound := q.Len()
		for i := 0; i < bound; i++ {
			var t *Task
			if e.cfg.AlwaysLock {
				t = q.dequeueAlwaysLock()
			} else {
				t = q.dequeue()
			}
			if t == nil {
				break
			}
			if !t.CPUSet.IsEmpty() && !t.CPUSet.IsSet(cpu) {
				// Not allowed here (possible for ancestor queues holding
				// tasks whose CPU set is a strict subset): put it back.
				e.skips.Add(1)
				q.enqueue(t)
				continue
			}
			e.run(t, cpu, q)
			ran++
			if max > 0 && ran >= max {
				return ran
			}
		}
	}
	return ran
}

// run executes one dequeued task on cpu and routes it to completion or
// re-enqueue.
func (e *Engine) run(t *Task, cpu int, q *Queue) {
	t.state.Store(uint32(StateRunning))
	t.lastCPU.Store(int64(cpu))
	t.runs.Add(1)
	e.executions.Add(1)
	e.execPerCPU[cpu].Add(1)
	done := t.Fn(t.Arg)
	if t.Options&Repeat != 0 && !done {
		t.state.Store(uint32(StateSubmitted))
		e.requeues.Add(1)
		t.home.enqueue(t)
		return
	}
	t.markDone()
}

// WaitActive waits for t to complete while executing pending tasks on
// behalf of cpu — the paper's overlap mechanism: a thread blocked on
// communication turns its core into a task-processing core.
func (e *Engine) WaitActive(t *Task, cpu int) {
	for !t.Done() {
		if e.Schedule(cpu) == 0 {
			// Nothing runnable here; let other goroutines progress.
			yield()
		}
	}
}

// Pending returns the total number of tasks currently enqueued across
// all queues, urgent queue included (approximate under concurrency).
func (e *Engine) Pending() int {
	n := 0
	for _, q := range e.queues {
		n += q.Len()
	}
	if uq := e.urgentQ.Load(); uq != nil {
		n += uq.Len()
	}
	return n
}

// Stats is a snapshot of engine counters.
type Stats struct {
	Submitted  uint64   // Submit calls accepted
	Executions uint64   // task body invocations
	Requeues   uint64   // Repeat re-enqueues
	Skips      uint64   // dequeues put back due to CPU-set mismatch
	ExecPerCPU []uint64 // executions indexed by CPU
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	s := Stats{
		Submitted:  e.submitted.Load(),
		Executions: e.executions.Load(),
		Requeues:   e.requeues.Load(),
		Skips:      e.skips.Load(),
		ExecPerCPU: make([]uint64, len(e.execPerCPU)),
	}
	for i := range e.execPerCPU {
		s.ExecPerCPU[i] = e.execPerCPU[i].Load()
	}
	return s
}

// ResetStats zeroes the engine counters (queue counters included).
func (e *Engine) ResetStats() {
	e.submitted.Store(0)
	e.executions.Store(0)
	e.requeues.Store(0)
	e.skips.Store(0)
	for i := range e.execPerCPU {
		e.execPerCPU[i].Store(0)
	}
	for _, q := range e.queues {
		q.enqueues.Store(0)
		q.dequeues.Store(0)
		q.spin.Reset()
	}
}
