package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pioman/internal/cpuset"
	"pioman/internal/topology"
)

func kwakEngine() *Engine {
	return New(Config{Topology: topology.Kwak()})
}

func TestSubmitPlacement(t *testing.T) {
	e := kwakEngine()
	cases := []struct {
		cs   cpuset.Set
		kind topology.Kind
	}{
		{cpuset.New(0), topology.Core},
		{cpuset.New(4, 6), topology.Cache},
		{cpuset.NewRange(8, 11), topology.Cache},
		{cpuset.New(0, 15), topology.Machine},
		{cpuset.Set{}, topology.Machine},
	}
	for _, c := range cases {
		task := &Task{Fn: func(any) bool { return true }, CPUSet: c.cs}
		if err := e.Submit(task); err != nil {
			t.Fatalf("Submit(%s): %v", c.cs, err)
		}
		if got := task.home.Node().Kind; got != c.kind {
			t.Errorf("task with cpuset %s placed on %v, want %v", c.cs, task.home.Node(), c.kind)
		}
	}
}

func TestSubmitErrors(t *testing.T) {
	e := kwakEngine()
	if err := e.Submit(&Task{}); err == nil {
		t.Error("Submit with nil Fn should fail")
	}
	task := NewTask(func(any) bool { return true }, nil)
	if err := e.Submit(task); err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(task); err == nil {
		t.Error("double Submit should fail")
	}
}

func TestScheduleRunsTask(t *testing.T) {
	e := kwakEngine()
	ran := false
	task := &Task{Fn: func(arg any) bool {
		ran = arg.(string) == "hello"
		return true
	}, Arg: "hello", CPUSet: cpuset.New(3)}
	e.MustSubmit(task)
	if n := e.Schedule(3); n != 1 {
		t.Fatalf("Schedule ran %d tasks, want 1", n)
	}
	if !ran || !task.Done() {
		t.Errorf("task not executed correctly: ran=%v state=%v", ran, task.State())
	}
	if task.LastCPU() != 3 {
		t.Errorf("LastCPU = %d, want 3", task.LastCPU())
	}
	if task.Runs() != 1 {
		t.Errorf("Runs = %d, want 1", task.Runs())
	}
}

func TestScheduleLocalBeforeGlobal(t *testing.T) {
	e := kwakEngine()
	var order []string
	mk := func(name string, cs cpuset.Set) *Task {
		return &Task{Fn: func(any) bool { order = append(order, name); return true }, CPUSet: cs}
	}
	// Submit in reverse locality order; Algorithm 1 must still run the
	// per-core task first, then cache, then global.
	e.MustSubmit(mk("global", cpuset.Set{}))
	e.MustSubmit(mk("cache", cpuset.NewRange(0, 3)))
	e.MustSubmit(mk("core", cpuset.New(0)))
	if n := e.Schedule(0); n != 3 {
		t.Fatalf("ran %d tasks, want 3", n)
	}
	want := []string{"core", "cache", "global"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order = %v, want %v", order, want)
		}
	}
}

func TestRepeatTaskRunsUntilSuccess(t *testing.T) {
	e := kwakEngine()
	countdown := 5
	task := &Task{
		Fn:      func(any) bool { countdown--; return countdown == 0 },
		CPUSet:  cpuset.New(2),
		Options: Repeat,
	}
	e.MustSubmit(task)
	total := 0
	for i := 0; i < 10 && !task.Done(); i++ {
		total += e.Schedule(2)
	}
	if !task.Done() {
		t.Fatal("repeat task never completed")
	}
	if task.Runs() != 5 {
		t.Errorf("Runs = %d, want 5", task.Runs())
	}
	if got := e.Stats().Requeues; got != 4 {
		t.Errorf("Requeues = %d, want 4", got)
	}
}

func TestRepeatReenqueuesOnHomeQueue(t *testing.T) {
	e := kwakEngine()
	task := &Task{
		Fn:      func(any) bool { return false },
		CPUSet:  cpuset.NewRange(4, 7),
		Options: Repeat,
	}
	e.MustSubmit(task)
	home := task.home
	e.Schedule(5)
	if task.home != home {
		t.Error("repeat task moved to a different queue")
	}
	if home.Len() != 1 {
		t.Errorf("home queue length = %d, want 1 (task re-enqueued)", home.Len())
	}
}

func TestScheduleBoundedByQueueLength(t *testing.T) {
	e := kwakEngine()
	// A repeat task that never completes must not livelock Schedule.
	task := &Task{Fn: func(any) bool { return false }, CPUSet: cpuset.New(1), Options: Repeat}
	e.MustSubmit(task)
	done := make(chan int)
	go func() { done <- e.Schedule(1) }()
	select {
	case n := <-done:
		if n != 1 {
			t.Errorf("Schedule ran %d executions, want 1 per pass", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Schedule livelocked on a never-completing repeat task")
	}
}

func TestCPUSetEnforcement(t *testing.T) {
	e := kwakEngine()
	// Task allowed only on CPUs 3 and 4 lands in the global queue (it
	// spans NUMA nodes); CPU 0 must not run it.
	task := &Task{Fn: func(any) bool { return true }, CPUSet: cpuset.New(3, 4)}
	e.MustSubmit(task)
	if n := e.Schedule(0); n != 0 {
		t.Fatalf("CPU 0 executed %d tasks, want 0", n)
	}
	if task.Done() {
		t.Fatal("task ran on a disallowed CPU")
	}
	if e.Stats().Skips == 0 {
		t.Error("expected a recorded skip")
	}
	if n := e.Schedule(4); n != 1 {
		t.Fatalf("CPU 4 executed %d tasks, want 1", n)
	}
	if task.LastCPU() != 4 {
		t.Errorf("LastCPU = %d, want 4", task.LastCPU())
	}
}

func TestScheduleOne(t *testing.T) {
	e := kwakEngine()
	for i := 0; i < 3; i++ {
		e.MustSubmit(&Task{Fn: func(any) bool { return true }, CPUSet: cpuset.New(0)})
	}
	if !e.ScheduleOne(0) {
		t.Fatal("ScheduleOne found no task")
	}
	if got := e.Pending(); got != 2 {
		t.Errorf("Pending = %d, want 2 after ScheduleOne", got)
	}
}

func TestDoneChan(t *testing.T) {
	e := kwakEngine()
	task := &Task{Fn: func(any) bool { return true }, CPUSet: cpuset.New(0)}
	ch := task.DoneChan()
	select {
	case <-ch:
		t.Fatal("DoneChan closed before completion")
	default:
	}
	e.MustSubmit(task)
	e.Schedule(0)
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("DoneChan not closed after completion")
	}
	// DoneChan after completion must be closed immediately.
	select {
	case <-task.DoneChan():
	default:
		t.Fatal("DoneChan requested after completion should be closed")
	}
}

func TestOnDoneCallback(t *testing.T) {
	e := kwakEngine()
	var calls atomic.Int32
	task := &Task{
		Fn:     func(any) bool { return true },
		OnDone: func(*Task) { calls.Add(1) },
		CPUSet: cpuset.New(0),
	}
	e.MustSubmit(task)
	e.Schedule(0)
	if calls.Load() != 1 {
		t.Errorf("OnDone called %d times, want 1", calls.Load())
	}
}

func TestWaitActiveExecutesWhileWaiting(t *testing.T) {
	e := kwakEngine()
	var helperRan atomic.Bool
	helper := &Task{Fn: func(any) bool { helperRan.Store(true); return true }, CPUSet: cpuset.New(0)}
	target := &Task{Fn: func(any) bool { return true }, CPUSet: cpuset.New(0)}
	e.MustSubmit(helper)
	e.MustSubmit(target)
	e.WaitActive(target, 0)
	if !target.Done() {
		t.Fatal("WaitActive returned before completion")
	}
	if !helperRan.Load() {
		t.Error("WaitActive should have executed the other pending task")
	}
}

func TestTaskResetReuse(t *testing.T) {
	e := kwakEngine()
	runs := 0
	task := &Task{Fn: func(any) bool { runs++; return true }, CPUSet: cpuset.New(0)}
	for i := 0; i < 3; i++ {
		e.MustSubmit(task)
		e.Schedule(0)
		if !task.Done() {
			t.Fatalf("iteration %d: task not done", i)
		}
		task.Reset()
		if task.State() != StateFree {
			t.Fatalf("Reset left state %v", task.State())
		}
	}
	if runs != 3 {
		t.Errorf("runs = %d, want 3", runs)
	}
}

func TestResetInFlightPanics(t *testing.T) {
	e := kwakEngine()
	task := &Task{Fn: func(any) bool { return true }, CPUSet: cpuset.New(0)}
	e.MustSubmit(task)
	defer func() {
		if recover() == nil {
			t.Error("Reset of a submitted task should panic")
		}
		e.Schedule(0) // drain for cleanliness
	}()
	task.Reset()
}

func TestIdleTracking(t *testing.T) {
	e := kwakEngine()
	if e.IsIdle(3) {
		t.Error("CPUs start busy")
	}
	e.SetIdle(3, true)
	if !e.IsIdle(3) {
		t.Error("SetIdle(3,true) not recorded")
	}
	e.SetIdle(3, false)
	if e.IsIdle(3) {
		t.Error("SetIdle(3,false) not recorded")
	}
	e.SetIdle(-1, true) // out of range: no-op
	e.SetIdle(99, true)
}

func TestFindIdleNearPrefersSibling(t *testing.T) {
	e := kwakEngine()
	// CPU 13 (remote NUMA) and CPU 2 (same chip as 0) both idle: the
	// sibling sharing home's L3 must win.
	e.SetIdle(13, true)
	e.SetIdle(2, true)
	if got := e.FindIdleNear(0); got != 2 {
		t.Errorf("FindIdleNear(0) = %d, want 2", got)
	}
	// Only the remote core idle: it is still found.
	e.SetIdle(2, false)
	if got := e.FindIdleNear(0); got != 13 {
		t.Errorf("FindIdleNear(0) = %d, want 13", got)
	}
	// Home being idle must not return home.
	e.SetIdle(13, false)
	e.SetIdle(0, true)
	if got := e.FindIdleNear(0); got != -1 {
		t.Errorf("FindIdleNear(0) = %d, want -1 (home excluded)", got)
	}
}

func TestSubmitToIdle(t *testing.T) {
	e := kwakEngine()
	e.SetIdle(1, true)
	task := &Task{Fn: func(any) bool { return true }}
	if err := e.SubmitToIdle(task, 0); err != nil {
		t.Fatal(err)
	}
	if !task.CPUSet.Equal(cpuset.New(1)) {
		t.Errorf("task pinned to %s, want CPU 1", task.CPUSet)
	}
	if task.home.Node().Kind != topology.Core {
		t.Errorf("task placed on %v, want per-core queue", task.home.Node())
	}

	// No idle core: must fall back to the global queue.
	e2 := kwakEngine()
	task2 := &Task{Fn: func(any) bool { return true }}
	if err := e2.SubmitToIdle(task2, 0); err != nil {
		t.Fatal(err)
	}
	if task2.home.Node().Kind != topology.Machine {
		t.Errorf("task placed on %v, want global queue", task2.home.Node())
	}
}

func TestSingleGlobalQueueMode(t *testing.T) {
	e := New(Config{Topology: topology.Kwak(), SingleGlobalQueue: true})
	if len(e.Queues()) != 1 {
		t.Fatalf("big-lock engine has %d queues, want 1", len(e.Queues()))
	}
	task := &Task{Fn: func(any) bool { return true }, CPUSet: cpuset.New(5)}
	e.MustSubmit(task)
	if task.home.Node().Kind != topology.Machine {
		t.Error("big-lock engine must place everything on the global queue")
	}
	// CPU-set still enforced even from the global queue.
	if n := e.Schedule(0); n != 0 {
		t.Errorf("CPU 0 ran %d tasks, want 0", n)
	}
	if n := e.Schedule(5); n != 1 {
		t.Errorf("CPU 5 ran %d tasks, want 1", n)
	}
}

func TestAllQueueKindsComplete(t *testing.T) {
	for _, kind := range []QueueKind{QueueSpinlock, QueueMutex, QueueLockFree} {
		t.Run(kind.String(), func(t *testing.T) {
			e := New(Config{Topology: topology.Kwak(), QueueKind: kind})
			const n = 200
			var ran atomic.Int32
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				cpu := i % 16
				task := &Task{Fn: func(any) bool { ran.Add(1); return true }, CPUSet: cpuset.New(cpu)}
				e.MustSubmit(task)
			}
			for cpu := 0; cpu < 16; cpu++ {
				wg.Add(1)
				go func(cpu int) {
					defer wg.Done()
					for e.Schedule(cpu) > 0 {
					}
				}(cpu)
			}
			wg.Wait()
			if ran.Load() != n {
				t.Errorf("%v: ran %d tasks, want %d", kind, ran.Load(), n)
			}
		})
	}
}

func TestAlwaysLockMode(t *testing.T) {
	e := New(Config{Topology: topology.Kwak(), AlwaysLock: true})
	task := &Task{Fn: func(any) bool { return true }, CPUSet: cpuset.New(0)}
	e.MustSubmit(task)
	if n := e.Schedule(0); n != 1 {
		t.Errorf("AlwaysLock Schedule ran %d, want 1", n)
	}
}

func TestStatsCounters(t *testing.T) {
	e := kwakEngine()
	for i := 0; i < 4; i++ {
		e.MustSubmit(&Task{Fn: func(any) bool { return true }, CPUSet: cpuset.New(0)})
	}
	e.Schedule(0)
	s := e.Stats()
	if s.Submitted != 4 || s.Executions != 4 {
		t.Errorf("Stats = %+v, want 4 submitted/4 executed", s)
	}
	if s.ExecPerCPU[0] != 4 {
		t.Errorf("ExecPerCPU[0] = %d, want 4", s.ExecPerCPU[0])
	}
	e.ResetStats()
	if s := e.Stats(); s.Submitted != 0 || s.Executions != 0 {
		t.Errorf("after reset Stats = %+v", s)
	}
}

func TestQueueLockStats(t *testing.T) {
	e := kwakEngine()
	task := &Task{Fn: func(any) bool { return true }, CPUSet: cpuset.New(0)}
	e.MustSubmit(task)
	e.Schedule(0)
	q := e.QueueFor(cpuset.New(0))
	acq, _ := q.LockStats()
	if acq == 0 {
		t.Error("spinlock queue should have recorded acquisitions")
	}
	if q.Enqueues() != 1 || q.Dequeues() != 1 {
		t.Errorf("queue counters = %d/%d, want 1/1", q.Enqueues(), q.Dequeues())
	}
}

func TestEmptyQueueScanTakesNoLock(t *testing.T) {
	// Algorithm 2's whole point: scheduling over empty queues must not
	// acquire any queue lock.
	e := kwakEngine()
	e.Schedule(0)
	for _, q := range e.Queues() {
		if acq, _ := q.LockStats(); acq != 0 {
			t.Errorf("queue %v acquired its lock %d times on an empty scan", q.Node(), acq)
		}
	}
}

func TestConcurrentSubmitAndSchedule(t *testing.T) {
	e := kwakEngine()
	const producers = 4
	const perProducer = 500
	var executed atomic.Int64
	var wg sync.WaitGroup

	stop := make(chan struct{})
	// Scheduler goroutines standing in for cores.
	for cpu := 0; cpu < 16; cpu++ {
		wg.Add(1)
		go func(cpu int) {
			defer wg.Done()
			for {
				e.Schedule(cpu)
				select {
				case <-stop:
					for e.Schedule(cpu) > 0 { // final drain
					}
					return
				default:
				}
			}
		}(cpu)
	}

	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			rng := rand.New(rand.NewSource(int64(p)))
			for i := 0; i < perProducer; i++ {
				var cs cpuset.Set
				switch rng.Intn(3) {
				case 0:
					cs = cpuset.New(rng.Intn(16))
				case 1:
					chip := rng.Intn(4)
					cs = cpuset.NewRange(chip*4, chip*4+3)
				case 2:
					// empty: any CPU
				}
				e.MustSubmit(&Task{Fn: func(any) bool { executed.Add(1); return true }, CPUSet: cs})
			}
		}(p)
	}
	pwg.Wait()

	deadline := time.After(10 * time.Second)
	for executed.Load() < producers*perProducer {
		select {
		case <-deadline:
			close(stop)
			wg.Wait()
			t.Fatalf("executed %d of %d tasks before deadline", executed.Load(), producers*perProducer)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	wg.Wait()
	if executed.Load() != producers*perProducer {
		t.Errorf("executed = %d, want %d", executed.Load(), producers*perProducer)
	}
	if e.Pending() != 0 {
		t.Errorf("Pending = %d after drain", e.Pending())
	}
}

func TestTasksRunOnlyOnAllowedCPUs(t *testing.T) {
	// Property: whatever interleaving occurs, a task's executing CPU is
	// always a member of its CPU set.
	e := kwakEngine()
	type obs struct {
		cs  cpuset.Set
		cpu int
	}
	var mu sync.Mutex
	var observations []obs
	rng := rand.New(rand.NewSource(7))
	const n = 300
	for i := 0; i < n; i++ {
		cs := cpuset.New(rng.Intn(16))
		if rng.Intn(2) == 0 {
			cs.Set(rng.Intn(16))
		}
		task := &Task{CPUSet: cs}
		task.Fn = func(any) bool {
			mu.Lock()
			observations = append(observations, obs{cs: task.CPUSet, cpu: task.LastCPU()})
			mu.Unlock()
			return true
		}
		e.MustSubmit(task)
	}
	var wg sync.WaitGroup
	for cpu := 0; cpu < 16; cpu++ {
		wg.Add(1)
		go func(cpu int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				e.Schedule(cpu)
			}
		}(cpu)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	for _, o := range observations {
		if !o.cs.IsSet(o.cpu) {
			t.Fatalf("task with cpuset %s ran on CPU %d", o.cs, o.cpu)
		}
	}
	if len(observations) != n {
		t.Logf("note: %d of %d tasks executed (rest remain queued)", len(observations), n)
	}
}
