package spinlock

import "sync/atomic"

// MPSC is a lock-free multi-producer single-consumer queue (Vyukov's
// algorithm). Any number of goroutines may Push concurrently; only one
// goroutine at a time may call Pop or Empty.
//
// It is the "lock-free algorithms to reduce contention on task queues"
// direction from the paper's future work (§VI), benchmarked against the
// spinlock-protected list in the ablation suite.
//
// The zero value is not usable; construct with NewMPSC.
type MPSC[T any] struct {
	// head is the consumer-side cursor. It always points at a node whose
	// value has already been consumed (initially the stub); the next
	// unconsumed value lives in head.next. Only the consumer touches it.
	head *mpscNode[T]
	tail atomic.Pointer[mpscNode[T]]
	stub mpscNode[T]
}

type mpscNode[T any] struct {
	next  atomic.Pointer[mpscNode[T]]
	value T
}

// NewMPSC returns an empty queue.
func NewMPSC[T any]() *MPSC[T] {
	q := &MPSC[T]{}
	q.head = &q.stub
	q.tail.Store(&q.stub)
	return q
}

// Push appends v to the queue. Safe for concurrent use by any number of
// producers.
func (q *MPSC[T]) Push(v T) {
	n := &mpscNode[T]{value: v}
	prev := q.tail.Swap(n)
	prev.next.Store(n)
}

// Pop removes and returns the oldest element, reporting false when the
// queue is observed empty. A Push whose tail swap completed but whose link
// store has not yet landed is invisible; repeated polling (as the task
// scheduler does) observes it once the producer finishes.
func (q *MPSC[T]) Pop() (T, bool) {
	var zero T
	next := q.head.next.Load()
	if next == nil {
		return zero, false
	}
	q.head = next
	v := next.value
	next.value = zero // drop reference so the GC can reclaim the payload
	return v, true
}

// Empty reports whether the queue appears empty. Like the unlocked check
// in the paper's Algorithm 2, the answer may be stale by the time the
// caller acts on it. Consumer-side only.
func (q *MPSC[T]) Empty() bool {
	return q.head.next.Load() == nil
}
