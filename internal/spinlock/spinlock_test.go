package spinlock

import (
	"sync"
	"testing"
)

func TestSpinLockMutualExclusion(t *testing.T) {
	var l SpinLock
	var wg sync.WaitGroup
	counter := 0
	const workers, iters = 8, 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != workers*iters {
		t.Errorf("counter = %d, want %d (lost updates => broken mutual exclusion)", counter, workers*iters)
	}
}

func TestSpinLockTryLock(t *testing.T) {
	var l SpinLock
	if !l.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held lock succeeded")
	}
	l.Unlock()
	if !l.TryLock() {
		t.Fatal("TryLock after Unlock failed")
	}
	l.Unlock()
}

func TestSpinLockUnlockOfUnlockedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Unlock of unlocked SpinLock should panic")
		}
	}()
	var l SpinLock
	l.Unlock()
}

// TestReleaseUncheckedReleases exercises the hot-path release used by
// the task queues: mutual exclusion must hold across Lock/TryLock with
// ReleaseUnchecked as the unlock.
func TestReleaseUncheckedReleases(t *testing.T) {
	var l SpinLock
	var wg sync.WaitGroup
	const workers, iters = 4, 500
	shared := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if !l.TryLock() {
					l.Lock()
				}
				shared++
				l.ReleaseUnchecked()
			}
		}()
	}
	wg.Wait()
	if shared != workers*iters {
		t.Errorf("shared = %d, want %d", shared, workers*iters)
	}
	if !l.TryLock() {
		t.Error("lock left held after ReleaseUnchecked")
	}
	l.Unlock()
}

func TestMPSCFIFOSingleProducer(t *testing.T) {
	q := NewMPSC[int]()
	if !q.Empty() {
		t.Fatal("new queue should be empty")
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue should fail")
	}
	for i := 0; i < 100; i++ {
		q.Push(i)
	}
	if q.Empty() {
		t.Fatal("queue with elements reports empty")
	}
	for i := 0; i < 100; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop #%d = (%d,%v), want (%d,true)", i, v, ok, i)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("queue should be drained")
	}
	if !q.Empty() {
		t.Fatal("drained queue should be empty")
	}
}

func TestMPSCInterleavedPushPop(t *testing.T) {
	q := NewMPSC[int]()
	for round := 0; round < 50; round++ {
		q.Push(round * 2)
		q.Push(round*2 + 1)
		a, ok1 := q.Pop()
		b, ok2 := q.Pop()
		if !ok1 || !ok2 || a != round*2 || b != round*2+1 {
			t.Fatalf("round %d: got (%d,%v) (%d,%v)", round, a, ok1, b, ok2)
		}
	}
}

func TestMPSCConcurrentProducers(t *testing.T) {
	q := NewMPSC[int]()
	const producers, perProducer = 8, 1000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Push(p*perProducer + i)
			}
		}(p)
	}

	seen := make(map[int]bool, producers*perProducer)
	lastPerProducer := make([]int, producers)
	for i := range lastPerProducer {
		lastPerProducer[i] = -1
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for len(seen) < producers*perProducer {
			v, ok := q.Pop()
			if !ok {
				continue
			}
			if seen[v] {
				panic("duplicate element popped")
			}
			seen[v] = true
			p, i := v/perProducer, v%perProducer
			if i <= lastPerProducer[p] {
				panic("per-producer FIFO order violated")
			}
			lastPerProducer[p] = i
		}
	}()
	wg.Wait()
	<-done
	if len(seen) != producers*perProducer {
		t.Fatalf("popped %d elements, want %d", len(seen), producers*perProducer)
	}
}

func TestMPSCPointerValues(t *testing.T) {
	type task struct{ id int }
	q := NewMPSC[*task]()
	q.Push(&task{id: 7})
	v, ok := q.Pop()
	if !ok || v == nil || v.id != 7 {
		t.Fatalf("Pop = (%v, %v)", v, ok)
	}
}

func BenchmarkSpinLockUncontended(b *testing.B) {
	var l SpinLock
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Lock()
		l.Unlock()
	}
}

func BenchmarkMutexUncontended(b *testing.B) {
	var l sync.Mutex
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Lock()
		l.Unlock()
	}
}

func BenchmarkSpinLockContended(b *testing.B) {
	var l SpinLock
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			l.Lock()
			l.Unlock()
		}
	})
}

func BenchmarkMutexContended(b *testing.B) {
	var l sync.Mutex
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			l.Lock()
			l.Unlock()
		}
	})
}

func BenchmarkMPSCPush(b *testing.B) {
	q := NewMPSC[int]()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Push(i)
		if i%64 == 63 {
			for {
				if _, ok := q.Pop(); !ok {
					break
				}
			}
		}
	}
}
