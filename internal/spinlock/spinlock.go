// Package spinlock provides the low-level synchronization primitives used
// by the task engine: a test-and-test-and-set spinlock with exponential
// backoff (plus an unguarded release for structurally paired hot paths),
// cache-line padding helpers, and lock-free multi-producer queues.
//
// The paper protects task queues with spinlocks because the critical
// sections are shorter than a context switch (§IV-A); it lists lock-free
// queues as future work (§VI). All three strategies are implemented here
// so they can be compared in the ablation benchmarks.
package spinlock

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Locker is the queue-protection contract: anything with Lock/Unlock.
// *SpinLock and *sync.Mutex both satisfy it.
type Locker interface {
	Lock()
	Unlock()
}

// Compile-time interface checks.
var (
	_ Locker = (*SpinLock)(nil)
	_ Locker = (*sync.Mutex)(nil)
)

// SpinLock is a test-and-test-and-set spinlock with bounded exponential
// backoff. The zero value is an unlocked lock.
type SpinLock struct {
	state atomic.Uint32
}

// maxBackoff bounds the number of spin iterations between CAS attempts.
const maxBackoff = 64

// Lock acquires the lock, spinning until it is available. After a bounded
// backoff it yields the processor so that a same-OS-thread holder can run
// (goroutines, unlike the paper's kernel threads, may share an OS thread).
func (l *SpinLock) Lock() {
	backoff := 1
	for {
		if l.state.Load() == 0 && l.state.CompareAndSwap(0, 1) {
			return
		}
		for i := 0; i < backoff; i++ {
			if l.state.Load() == 0 {
				break
			}
		}
		if backoff < maxBackoff {
			backoff <<= 1
		} else {
			runtime.Gosched()
		}
	}
}

// TryLock acquires the lock without spinning, reporting success.
func (l *SpinLock) TryLock() bool {
	return l.state.Load() == 0 && l.state.CompareAndSwap(0, 1)
}

// Unlock releases the lock. Unlocking an unlocked SpinLock panics.
func (l *SpinLock) Unlock() {
	if !l.state.CompareAndSwap(1, 0) {
		panic("spinlock: Unlock of unlocked SpinLock")
	}
}

// ReleaseUnchecked releases the lock with a single atomic store, without
// Unlock's double-unlock guard (a compare-and-swap). Hot paths whose
// Lock/Unlock pairing is structurally guaranteed — the task queue's
// enqueue and drain critical sections — use it to save one locked RMW
// per critical section.
func (l *SpinLock) ReleaseUnchecked() { l.state.Store(0) }

// CacheLineSize is the assumed size of one CPU cache line. 64 bytes is
// correct for every x86-64 and most arm64 parts; over-padding on the few
// 128-byte-line machines costs memory, never correctness.
const CacheLineSize = 64

// CacheLinePad is embedded between hot fields of a struct to keep them
// on distinct cache lines, eliminating false sharing between cores that
// write neighbouring fields (producer vs. consumer counters, per-CPU
// slots of a shared slice).
type CacheLinePad [CacheLineSize]byte
