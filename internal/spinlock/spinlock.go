// Package spinlock provides the low-level synchronization primitives used
// by the task engine: a test-and-test-and-set spinlock with exponential
// backoff, an instrumented variant that records contention, a sync.Mutex
// adapter, and a lock-free multi-producer queue.
//
// The paper protects task queues with spinlocks because the critical
// sections are shorter than a context switch (§IV-A); it lists lock-free
// queues as future work (§VI). All three strategies are implemented here
// so they can be compared in the ablation benchmarks.
package spinlock

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Locker is the queue-protection contract: anything with Lock/Unlock.
// *SpinLock, *Instrumented and *sync.Mutex all satisfy it.
type Locker interface {
	Lock()
	Unlock()
}

// Compile-time interface checks.
var (
	_ Locker = (*SpinLock)(nil)
	_ Locker = (*Instrumented)(nil)
	_ Locker = (*sync.Mutex)(nil)
)

// SpinLock is a test-and-test-and-set spinlock with bounded exponential
// backoff. The zero value is an unlocked lock.
type SpinLock struct {
	state atomic.Uint32
}

// maxBackoff bounds the number of spin iterations between CAS attempts.
const maxBackoff = 64

// Lock acquires the lock, spinning until it is available. After a bounded
// backoff it yields the processor so that a same-OS-thread holder can run
// (goroutines, unlike the paper's kernel threads, may share an OS thread).
func (l *SpinLock) Lock() {
	backoff := 1
	for {
		if l.state.Load() == 0 && l.state.CompareAndSwap(0, 1) {
			return
		}
		for i := 0; i < backoff; i++ {
			if l.state.Load() == 0 {
				break
			}
		}
		if backoff < maxBackoff {
			backoff <<= 1
		} else {
			runtime.Gosched()
		}
	}
}

// TryLock acquires the lock without spinning, reporting success.
func (l *SpinLock) TryLock() bool {
	return l.state.Load() == 0 && l.state.CompareAndSwap(0, 1)
}

// Unlock releases the lock. Unlocking an unlocked SpinLock panics.
func (l *SpinLock) Unlock() {
	if !l.state.CompareAndSwap(1, 0) {
		panic("spinlock: Unlock of unlocked SpinLock")
	}
}

// Instrumented wraps a SpinLock and counts acquisitions and contended
// acquisitions (those that did not succeed on the first attempt). Counters
// may be read concurrently.
type Instrumented struct {
	lock      SpinLock
	acquires  atomic.Uint64
	contended atomic.Uint64
}

// Lock acquires the lock, recording whether contention was observed.
func (l *Instrumented) Lock() {
	l.acquires.Add(1)
	if l.lock.TryLock() {
		return
	}
	l.contended.Add(1)
	l.lock.Lock()
}

// Unlock releases the lock.
func (l *Instrumented) Unlock() { l.lock.Unlock() }

// Acquires returns the total number of Lock calls.
func (l *Instrumented) Acquires() uint64 { return l.acquires.Load() }

// Contended returns the number of Lock calls that had to wait.
func (l *Instrumented) Contended() uint64 { return l.contended.Load() }

// Reset zeroes the counters.
func (l *Instrumented) Reset() {
	l.acquires.Store(0)
	l.contended.Store(0)
}
