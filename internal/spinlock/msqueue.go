package spinlock

import "sync/atomic"

// MSQueue is a lock-free multi-producer multi-consumer FIFO queue
// (Michael & Scott, PODC'96). Unlike MPSC it supports concurrent
// consumers, which the task engine needs because any core below a
// topology node may drain that node's queue.
//
// Nodes are carved out of fixed-size slabs instead of being allocated
// one heap object per enqueue: a slab of msSlabSize nodes is allocated
// once and producers claim slots from it with a single atomic add, so
// the amortized allocation cost per enqueue is 1/msSlabSize heap
// objects (benchmem reports 0 allocs/op). Nodes are deliberately NEVER
// recycled after dequeue — reusing a node while a concurrent operation
// still holds a pointer to it would reintroduce the ABA problem the
// garbage collector otherwise rules out; exhausted slabs are reclaimed
// wholesale by the GC once every node in them has left the queue.
// A consequence is that a dequeued node keeps its value reachable until
// its slab retires; values are small pointers here, so the bounded
// retention (≤ msSlabSize values per queue) is an accepted trade.
//
// The head, tail and size words live on separate cache lines so that
// producers (tail) and consumers (head) do not false-share.
//
// The zero value is not usable; construct with NewMSQueue.
type MSQueue[T any] struct {
	head atomic.Pointer[msNode[T]]
	_    CacheLinePad
	tail atomic.Pointer[msNode[T]]
	_    CacheLinePad
	size atomic.Int64
	_    CacheLinePad

	slab       atomic.Pointer[msSlab[T]]
	slabAllocs atomic.Uint64
	retries    atomic.Uint64
}

type msNode[T any] struct {
	next  atomic.Pointer[msNode[T]]
	value T
}

// msSlabSize is the number of nodes per slab. 64 keeps a slab around
// 1-2 KiB for pointer-sized values while making per-enqueue allocation
// cost negligible.
const msSlabSize = 64

// msSlab is one block of nodes handed out sequentially.
type msSlab[T any] struct {
	next  atomic.Int64
	nodes [msSlabSize]msNode[T]
}

// NewMSQueue returns an empty queue.
func NewMSQueue[T any]() *MSQueue[T] {
	q := &MSQueue[T]{}
	sentinel := q.newNode()
	q.head.Store(sentinel)
	q.tail.Store(sentinel)
	return q
}

// newNode claims a fresh node from the current slab, installing a new
// slab when the current one is exhausted. Slot claiming is one atomic
// add; slab replacement is a CAS so a racing loser's slab is simply
// dropped (one wasted allocation, no corruption).
func (q *MSQueue[T]) newNode() *msNode[T] {
	for {
		s := q.slab.Load()
		if s != nil {
			if idx := s.next.Add(1) - 1; idx < msSlabSize {
				return &s.nodes[idx]
			}
		}
		ns := &msSlab[T]{}
		ns.next.Store(1)
		q.slabAllocs.Add(1)
		if q.slab.CompareAndSwap(s, ns) {
			return &ns.nodes[0]
		}
	}
}

// Enqueue appends v. Safe for any number of concurrent producers.
// Retries are tallied locally and published once per operation, so the
// instrumentation never adds contention to an already contended loop.
func (q *MSQueue[T]) Enqueue(v T) {
	n := q.newNode()
	n.value = v
	spins := uint64(0)
	for {
		tail := q.tail.Load()
		next := tail.next.Load()
		if tail != q.tail.Load() {
			spins++
			continue
		}
		if next != nil {
			// Tail is lagging; help advance it.
			q.tail.CompareAndSwap(tail, next)
			spins++
			continue
		}
		if tail.next.CompareAndSwap(nil, n) {
			q.tail.CompareAndSwap(tail, n)
			q.size.Add(1)
			if spins > 0 {
				q.retries.Add(spins)
			}
			return
		}
		spins++
	}
}

// Dequeue removes and returns the oldest element, reporting false when
// the queue is empty. Safe for any number of concurrent consumers.
func (q *MSQueue[T]) Dequeue() (T, bool) {
	var zero T
	spins := uint64(0)
	for {
		head := q.head.Load()
		tail := q.tail.Load()
		next := head.next.Load()
		if head != q.head.Load() {
			spins++
			continue
		}
		if head == tail {
			if next == nil {
				if spins > 0 {
					q.retries.Add(spins)
				}
				return zero, false
			}
			q.tail.CompareAndSwap(tail, next)
			spins++
			continue
		}
		v := next.value
		if q.head.CompareAndSwap(head, next) {
			q.size.Add(-1)
			if spins > 0 {
				q.retries.Add(spins)
			}
			return v, true
		}
		spins++
	}
}

// Len returns the approximate number of queued elements.
func (q *MSQueue[T]) Len() int { return int(q.size.Load()) }

// Empty reports whether the queue appears empty (may be stale).
func (q *MSQueue[T]) Empty() bool { return q.size.Load() <= 0 }

// SlabAllocs returns how many node slabs have been allocated — the
// lock-free analogue of counting enqueue allocations (one slab serves
// msSlabSize enqueues).
func (q *MSQueue[T]) SlabAllocs() uint64 { return q.slabAllocs.Load() }

// Retries returns the number of CAS retry iterations observed across
// Enqueue and Dequeue — the lock-free analogue of lock contention.
func (q *MSQueue[T]) Retries() uint64 { return q.retries.Load() }

// ResetStats zeroes the instrumentation counters (slab allocations and
// CAS retries); queue contents and length are untouched.
func (q *MSQueue[T]) ResetStats() {
	q.slabAllocs.Store(0)
	q.retries.Store(0)
}
