package spinlock

import "sync/atomic"

// MSQueue is a lock-free multi-producer multi-consumer FIFO queue
// (Michael & Scott, PODC'96). Unlike MPSC it supports concurrent
// consumers, which the task engine needs because any core below a
// topology node may drain that node's queue.
//
// Nodes are heap-allocated per enqueue, so this variant trades the
// paper's zero-allocation discipline for lock freedom — exactly the
// trade-off the ablation benchmarks quantify. ABA problems cannot occur
// because nodes are garbage-collected, never recycled.
//
// The zero value is not usable; construct with NewMSQueue.
type MSQueue[T any] struct {
	head atomic.Pointer[msNode[T]]
	tail atomic.Pointer[msNode[T]]
	size atomic.Int64
}

type msNode[T any] struct {
	next  atomic.Pointer[msNode[T]]
	value T
}

// NewMSQueue returns an empty queue.
func NewMSQueue[T any]() *MSQueue[T] {
	q := &MSQueue[T]{}
	sentinel := &msNode[T]{}
	q.head.Store(sentinel)
	q.tail.Store(sentinel)
	return q
}

// Enqueue appends v. Safe for any number of concurrent producers.
func (q *MSQueue[T]) Enqueue(v T) {
	n := &msNode[T]{value: v}
	for {
		tail := q.tail.Load()
		next := tail.next.Load()
		if tail != q.tail.Load() {
			continue
		}
		if next != nil {
			// Tail is lagging; help advance it.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		if tail.next.CompareAndSwap(nil, n) {
			q.tail.CompareAndSwap(tail, n)
			q.size.Add(1)
			return
		}
	}
}

// Dequeue removes and returns the oldest element, reporting false when
// the queue is empty. Safe for any number of concurrent consumers.
func (q *MSQueue[T]) Dequeue() (T, bool) {
	var zero T
	for {
		head := q.head.Load()
		tail := q.tail.Load()
		next := head.next.Load()
		if head != q.head.Load() {
			continue
		}
		if head == tail {
			if next == nil {
				return zero, false
			}
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		v := next.value
		if q.head.CompareAndSwap(head, next) {
			q.size.Add(-1)
			return v, true
		}
	}
}

// Len returns the approximate number of queued elements.
func (q *MSQueue[T]) Len() int { return int(q.size.Load()) }

// Empty reports whether the queue appears empty (may be stale).
func (q *MSQueue[T]) Empty() bool { return q.size.Load() <= 0 }
