package spinlock

import (
	"sync"
	"testing"
)

func TestMSQueueFIFO(t *testing.T) {
	q := NewMSQueue[int]()
	if _, ok := q.Dequeue(); ok {
		t.Fatal("Dequeue on empty queue reported a value")
	}
	for i := 0; i < 200; i++ {
		q.Enqueue(i)
	}
	if got := q.Len(); got != 200 {
		t.Errorf("Len = %d, want 200", got)
	}
	for i := 0; i < 200; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("Dequeue #%d = (%d, %v), want (%d, true)", i, v, ok, i)
		}
	}
	if !q.Empty() {
		t.Error("queue not empty after draining")
	}
}

// TestMSQueueSlabAmortizesAllocation is the regression test for the slab
// node pool: enqueueing must cost far less than one heap allocation per
// operation (one slab of msSlabSize nodes at a time).
func TestMSQueueSlabAmortizesAllocation(t *testing.T) {
	q := NewMSQueue[int]()
	const rounds = 10 * msSlabSize
	allocs := testing.AllocsPerRun(rounds, func() {
		q.Enqueue(1)
		q.Dequeue()
	})
	if allocs > 2.0/msSlabSize+0.01 {
		t.Errorf("allocs per enqueue = %.3f, want ~1/%d", allocs, msSlabSize)
	}
	if q.SlabAllocs() == 0 {
		t.Error("SlabAllocs = 0, expected slab allocations to be counted")
	}
}

func TestMSQueueConcurrentMPMC(t *testing.T) {
	q := NewMSQueue[int]()
	const producers, consumers, perProducer = 4, 4, 2000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Enqueue(p*perProducer + i)
			}
		}(p)
	}
	total := producers * perProducer
	seen := make([]bool, total)
	var mu sync.Mutex
	var consumed int
	var cwg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				v, ok := q.Dequeue()
				if !ok {
					mu.Lock()
					done := consumed >= total
					mu.Unlock()
					if done {
						return
					}
					continue
				}
				mu.Lock()
				if seen[v] {
					t.Errorf("value %d dequeued twice", v)
				}
				seen[v] = true
				consumed++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	cwg.Wait()
	for v, ok := range seen {
		if !ok {
			t.Fatalf("value %d lost", v)
		}
	}
	if !q.Empty() {
		t.Errorf("Len = %d after full drain", q.Len())
	}
}

func TestMSQueueResetStats(t *testing.T) {
	q := NewMSQueue[int]()
	for i := 0; i < 3*msSlabSize; i++ {
		q.Enqueue(i)
	}
	if q.SlabAllocs() == 0 {
		t.Fatal("expected slab allocations")
	}
	q.ResetStats()
	if q.SlabAllocs() != 0 || q.Retries() != 0 {
		t.Error("ResetStats did not zero instrumentation")
	}
	if got := q.Len(); got != 3*msSlabSize {
		t.Errorf("ResetStats disturbed queue contents: Len = %d", got)
	}
}
