package simtime

import (
	"testing"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	s := New()
	var order []int
	s.At(300, func() { order = append(order, 3) })
	s.At(100, func() { order = append(order, 1) })
	s.At(200, func() { order = append(order, 2) })
	end := s.Run()
	if end != 300 {
		t.Errorf("final time = %v, want 300", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
}

func TestTieBreakIsSchedulingOrder(t *testing.T) {
	s := New()
	var order []string
	s.At(50, func() { order = append(order, "first") })
	s.At(50, func() { order = append(order, "second") })
	s.Run()
	if order[0] != "first" || order[1] != "second" {
		t.Errorf("tie-break violated: %v", order)
	}
}

func TestAfterIsRelative(t *testing.T) {
	s := New()
	var at Time
	s.At(100, func() {
		s.After(50, func() { at = s.Now() })
	})
	s.Run()
	if at != 150 {
		t.Errorf("After fired at %v, want 150", at)
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	s := New()
	var at Time = -1
	s.At(100, func() {
		s.At(10, func() { at = s.Now() }) // in the past
	})
	s.Run()
	if at != 100 {
		t.Errorf("past event ran at %v, want clamped to 100", at)
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	ran := 0
	s.At(100, func() { ran++ })
	s.At(200, func() { ran++ })
	s.RunUntil(150)
	if ran != 1 {
		t.Errorf("ran = %d, want 1", ran)
	}
	if s.Now() != 150 {
		t.Errorf("Now = %v, want 150", s.Now())
	}
	s.Run()
	if ran != 2 {
		t.Errorf("ran = %d after Run, want 2", ran)
	}
}

func TestStepEmpty(t *testing.T) {
	s := New()
	if s.Step() {
		t.Error("Step on empty sim should report false")
	}
}

func TestProcSleepAdvancesVirtualTime(t *testing.T) {
	s := New()
	var stamps []Time
	s.Spawn("sleeper", func(p *Proc) {
		stamps = append(stamps, p.Now())
		p.Sleep(500)
		stamps = append(stamps, p.Now())
		p.Sleep(2 * Microsecond)
		stamps = append(stamps, p.Now())
	})
	s.Run()
	defer s.Close()
	want := []Time{0, 500, 2500}
	if len(stamps) != 3 {
		t.Fatalf("stamps = %v", stamps)
	}
	for i := range want {
		if stamps[i] != want[i] {
			t.Errorf("stamps = %v, want %v", stamps, want)
			break
		}
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		s := New()
		defer s.Close()
		var order []string
		s.Spawn("a", func(p *Proc) {
			order = append(order, "a0")
			p.Sleep(100)
			order = append(order, "a100")
			p.Sleep(200)
			order = append(order, "a300")
		})
		s.Spawn("b", func(p *Proc) {
			order = append(order, "b0")
			p.Sleep(150)
			order = append(order, "b150")
		})
		s.Run()
		return order
	}
	first := run()
	want := []string{"a0", "b0", "a100", "b150", "a300"}
	if len(first) != len(want) {
		t.Fatalf("order = %v, want %v", first, want)
	}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("order = %v, want %v", first, want)
		}
	}
	// Determinism: ten more runs must match exactly.
	for r := 0; r < 10; r++ {
		again := run()
		for i := range want {
			if again[i] != want[i] {
				t.Fatalf("run %d diverged: %v", r, again)
			}
		}
	}
}

func TestSignalWaitAndFire(t *testing.T) {
	s := New()
	defer s.Close()
	sig := s.NewSignal()
	var wokenAt Time = -1
	s.Spawn("waiter", func(p *Proc) {
		sig.Wait(p)
		wokenAt = p.Now()
	})
	s.Spawn("firer", func(p *Proc) {
		p.Sleep(700)
		sig.Fire()
	})
	s.Run()
	if wokenAt != 700 {
		t.Errorf("waiter woke at %v, want 700", wokenAt)
	}
	if !sig.Fired() {
		t.Error("signal should report fired")
	}
}

func TestSignalWaitAfterFireReturnsImmediately(t *testing.T) {
	s := New()
	defer s.Close()
	sig := s.NewSignal()
	sig.Fire()
	var at Time = -1
	s.Spawn("late", func(p *Proc) {
		p.Sleep(10)
		sig.Wait(p) // already fired: no park
		at = p.Now()
	})
	s.Run()
	if at != 10 {
		t.Errorf("late waiter continued at %v, want 10", at)
	}
}

func TestSignalMultipleWaiters(t *testing.T) {
	s := New()
	defer s.Close()
	sig := s.NewSignal()
	woken := 0
	for i := 0; i < 5; i++ {
		s.Spawn("w", func(p *Proc) {
			sig.Wait(p)
			woken++
		})
	}
	s.At(100, func() { sig.Fire() })
	s.Run()
	if woken != 5 {
		t.Errorf("woken = %d, want 5", woken)
	}
}

func TestCloseReleasesParkedProcs(t *testing.T) {
	s := New()
	sig := s.NewSignal() // never fired
	bodyFinished := false
	s.Spawn("stuck", func(p *Proc) {
		sig.Wait(p)
		bodyFinished = true
	})
	s.Run()
	s.Close() // must not hang
	if bodyFinished {
		t.Error("killed process body should not have continued")
	}
	// Double close is a no-op.
	s.Close()
}

func TestCloseReleasesNeverStartedProcs(t *testing.T) {
	s := New()
	s.Spawn("never", func(p *Proc) {
		t.Error("process should never run")
	})
	// Close without Run: the dispatch event never fires.
	s.Close()
}

func TestDeferRunsWhenProcKilled(t *testing.T) {
	s := New()
	sig := s.NewSignal()
	deferRan := false
	s.Spawn("d", func(p *Proc) {
		defer func() { deferRan = true }()
		sig.Wait(p)
	})
	s.Run()
	s.Close()
	if !deferRan {
		t.Error("defers in killed process bodies must run")
	}
}

func TestMixedEventsAndProcs(t *testing.T) {
	s := New()
	defer s.Close()
	var log []string
	s.At(50, func() { log = append(log, "event@50") })
	s.Spawn("p", func(p *Proc) {
		p.Sleep(25)
		log = append(log, "proc@25")
		p.Sleep(50)
		log = append(log, "proc@75")
	})
	s.Run()
	want := []string{"proc@25", "event@50", "proc@75"}
	if len(log) != 3 {
		t.Fatalf("log = %v", log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}

func TestTimeString(t *testing.T) {
	if got := Time(1500).String(); got != "1.500µs" {
		t.Errorf("String = %q", got)
	}
}
