// Package simtime is a deterministic discrete-event simulation engine
// with virtual nanosecond time. It underlies the experiment harnesses
// that reproduce the paper's measurements on hardware we do not have
// (8- and 16-core NUMA Opterons, InfiniBand NICs): protocol and cost
// models run in virtual time, so results are exact and repeatable.
//
// Two styles are supported and freely mixed:
//
//   - event callbacks: Sim.At / Sim.After schedule functions at virtual
//     times;
//   - processes: Spawn starts an imperative goroutine that advances
//     virtual time with Proc.Sleep and synchronizes on Signals. The
//     engine enforces strict alternation (exactly one process or event
//     runs at a time), so models are single-threaded and deterministic
//     despite using goroutines.
//
// Ties in event time are broken by scheduling order, which makes runs
// bit-for-bit reproducible.
package simtime

import (
	"container/heap"
	"fmt"
)

// Time is virtual time in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration = Time

// Common durations, mirroring time package conventions.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// String formats the time in microseconds for experiment output.
func (t Time) String() string { return fmt.Sprintf("%.3fµs", float64(t)/1000) }

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Sim is a discrete-event simulator. Not safe for concurrent use: all
// interaction happens from the goroutine calling Run (or from processes,
// which the engine serializes).
type Sim struct {
	now    Time
	events eventHeap
	seq    uint64
	closed bool
	procs  map[*Proc]struct{}
}

// New returns an empty simulation at time 0.
func New() *Sim {
	return &Sim{procs: make(map[*Proc]struct{})}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past runs at the current time (after already-queued events at now).
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.events, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d nanoseconds from now.
func (s *Sim) After(d Duration, fn func()) { s.At(s.now+d, fn) }

// Step executes the next event, advancing virtual time. It reports false
// when no events remain.
func (s *Sim) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := heap.Pop(&s.events).(*event)
	s.now = e.at
	e.fn()
	return true
}

// Run executes events until none remain, then returns the final time.
func (s *Sim) Run() Time {
	for s.Step() {
	}
	return s.now
}

// RunUntil executes events with time <= t, then sets the clock to t.
func (s *Sim) RunUntil(t Time) {
	for len(s.events) > 0 && s.events[0].at <= t {
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// Close terminates any processes still parked or never dispatched, so
// their goroutines exit. A process that is itself calling Close is left
// alone. Safe to call multiple times.
func (s *Sim) Close() {
	if s.closed {
		return
	}
	s.closed = true
	for p := range s.procs {
		if p.killable() {
			p.kill()
		}
	}
	s.procs = map[*Proc]struct{}{}
}
