package simtime

// Mutex is a FIFO mutual-exclusion lock for simulation processes. It
// models a contended big lock (e.g. an MPI library's global lock): a
// process acquiring a held lock parks until every earlier waiter has
// held and released it. Hold durations are whatever virtual time the
// holder spends between Lock and Unlock.
type Mutex struct {
	sim     *Sim
	held    bool
	waiters []*Proc
}

// NewMutex returns an unlocked mutex.
func (s *Sim) NewMutex() *Mutex { return &Mutex{sim: s} }

// Lock acquires the mutex for p, parking it in FIFO order if held.
func (m *Mutex) Lock(p *Proc) {
	if !m.held {
		m.held = true
		return
	}
	m.waiters = append(m.waiters, p)
	p.park()
}

// Unlock releases the mutex, handing it to the oldest waiter (which is
// scheduled to resume at the current virtual time).
func (m *Mutex) Unlock() {
	if !m.held {
		panic("simtime: Unlock of unlocked Mutex")
	}
	if len(m.waiters) == 0 {
		m.held = false
		return
	}
	next := m.waiters[0]
	m.waiters = m.waiters[1:]
	// Lock stays held; ownership passes directly to the next waiter.
	m.sim.At(m.sim.now, func() { next.dispatch() })
}

// QueueLen returns the number of parked waiters.
func (m *Mutex) QueueLen() int { return len(m.waiters) }
