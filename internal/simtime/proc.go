package simtime

// Proc is an imperative simulation process: a goroutine whose execution
// strictly alternates with the simulation loop, so that at most one
// process (or event callback) runs at any instant. Processes advance
// virtual time with Sleep and coordinate through Signals.
type Proc struct {
	sim  *Sim
	name string

	resume chan procMsg  // engine -> process
	toSim  chan struct{} // process -> engine (parked or exited)

	started bool
	parked  bool
	exited  bool
}

type procMsg int

const (
	msgRun procMsg = iota
	msgKill
)

// procKilled unwinds a killed process body; recovered in the Spawn
// wrapper.
type procKilled struct{}

// Spawn starts fn as a process at the current virtual time. fn begins
// executing when the simulation reaches that event.
func (s *Sim) Spawn(name string, fn func(*Proc)) *Proc {
	if s.closed {
		panic("simtime: Spawn on closed Sim")
	}
	p := &Proc{
		sim:    s,
		name:   name,
		resume: make(chan procMsg),
		toSim:  make(chan struct{}),
	}
	s.procs[p] = struct{}{}
	go func() {
		// The exit notification lives in a defer so it is sent only after
		// every defer in fn has finished unwinding — the engine (and thus
		// the test or model code) must never observe a half-dead process.
		defer func() {
			r := recover()
			if r != nil {
				if _, ok := r.(procKilled); !ok {
					panic(r)
				}
			}
			p.exited = true
			p.toSim <- struct{}{}
		}()
		if m := <-p.resume; m == msgKill {
			return
		}
		fn(p)
		delete(s.procs, p) // exclusive: the engine is waiting on toSim
	}()
	s.At(s.now, func() { p.dispatch() })
	return p
}

// dispatch hands control to the process goroutine and waits for it to
// park or exit — preserving the single-runner invariant.
func (p *Proc) dispatch() {
	if p.exited {
		return
	}
	p.started = true
	p.parked = false
	p.resume <- msgRun
	<-p.toSim
}

// kill releases a parked or never-started process's goroutine.
func (p *Proc) kill() {
	if p.exited {
		return
	}
	p.resume <- msgKill
	<-p.toSim
}

// killable reports whether kill can safely target the process: it must
// be waiting on its resume channel (parked, or never dispatched).
func (p *Proc) killable() bool {
	return !p.exited && (p.parked || !p.started)
}

// park returns control to the engine until dispatch resumes the process.
func (p *Proc) park() {
	p.parked = true
	p.toSim <- struct{}{}
	if m := <-p.resume; m == msgKill {
		// Unwind the body; the Spawn wrapper's defer notifies the engine
		// once every defer has run.
		panic(procKilled{})
	}
}

// Name returns the process name.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.sim.Now() }

// Sim returns the owning simulator.
func (p *Proc) Sim() *Sim { return p.sim }

// Sleep suspends the process for d nanoseconds of virtual time.
func (p *Proc) Sleep(d Duration) {
	p.sim.At(p.sim.now+d, func() { p.dispatch() })
	p.park()
}

// Signal is a one-shot virtual-time synchronization point: processes
// Wait until some event or process calls Fire. Waits after Fire return
// immediately. The analogue of the "blocking condition" the paper's
// receiving threads sleep on.
type Signal struct {
	sim     *Sim
	fired   bool
	waiters []*Proc
}

// NewSignal returns an unfired signal.
func (s *Sim) NewSignal() *Signal { return &Signal{sim: s} }

// Fired reports whether Fire has been called.
func (sg *Signal) Fired() bool { return sg.fired }

// Fire releases all current and future waiters. Idempotent.
func (sg *Signal) Fire() {
	if sg.fired {
		return
	}
	sg.fired = true
	for _, p := range sg.waiters {
		p := p
		sg.sim.At(sg.sim.now, func() { p.dispatch() })
	}
	sg.waiters = nil
}

// Wait parks the process until the signal fires.
func (sg *Signal) Wait(p *Proc) {
	if sg.fired {
		return
	}
	sg.waiters = append(sg.waiters, p)
	p.park()
}
