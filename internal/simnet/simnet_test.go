package simnet

import (
	"testing"

	"pioman/internal/simtime"
)

func testFabric(nics int) (*simtime.Sim, *Fabric, *Node, *Node) {
	sim := simtime.New()
	f := NewFabric(sim, Params{
		Latency:      1000,
		NsPerByte:    1.0,
		SendOverhead: 100,
		RecvOverhead: 100,
		PollCost:     50,
		RDMASetup:    500,
	})
	a := f.AddNode(nics)
	b := f.AddNode(nics)
	return sim, f, a, b
}

func TestMessageArrivesAfterWireTime(t *testing.T) {
	sim, _, a, b := testFabric(1)
	a.NIC(0).PostSend(b.ID(), 100, "hello")
	var arrival simtime.Time = -1
	var got Completion

	// Poll until the message shows up.
	sim.Spawn("receiver", func(p *simtime.Proc) {
		for {
			c, ok := b.NIC(0).Poll()
			if ok && c.Kind == CompRecv {
				arrival, got = p.Now(), c
				return
			}
			p.Sleep(10)
		}
	})
	sim.Run()
	defer sim.Close()

	want := simtime.Time(1000 + 100) // latency + size*1ns/B
	if arrival < want || arrival > want+20 {
		t.Errorf("arrival at %v, want ≈%v", arrival, want)
	}
	if got.From != a.ID() || got.Size != 100 || got.Meta != "hello" {
		t.Errorf("completion = %+v", got)
	}
}

func TestSendDoneCompletion(t *testing.T) {
	sim, _, a, b := testFabric(1)
	a.NIC(0).PostSend(b.ID(), 1000, nil)
	var doneAt simtime.Time = -1
	sim.Spawn("sender", func(p *simtime.Proc) {
		for {
			if c, ok := a.NIC(0).Poll(); ok && c.Kind == CompSendDone {
				doneAt = p.Now()
				return
			}
			p.Sleep(10)
		}
	})
	sim.Run()
	defer sim.Close()
	// Local send-done after size/bandwidth only (no wire latency).
	if doneAt < 1000 || doneAt > 1030 {
		t.Errorf("send-done at %v, want ≈1000", doneAt)
	}
}

func TestRDMAReadTiming(t *testing.T) {
	sim, _, a, b := testFabric(1)
	// b pulls 10000 bytes from a: setup 500 + request flight 1000 +
	// latency 1000 + 10000 B * 1 ns/B = 12500.
	b.NIC(0).PostRDMARead(a.ID(), 10000, "xfer")
	var doneAt simtime.Time = -1
	sim.Spawn("puller", func(p *simtime.Proc) {
		for {
			if c, ok := b.NIC(0).Poll(); ok && c.Kind == CompRDMADone {
				if c.Size != 10000 || c.Meta != "xfer" {
					t.Errorf("completion = %+v", c)
				}
				doneAt = p.Now()
				return
			}
			p.Sleep(10)
		}
	})
	sim.Run()
	defer sim.Close()
	if doneAt < 12500 || doneAt > 12530 {
		t.Errorf("RDMA done at %v, want ≈12500", doneAt)
	}
}

func TestRDMADoesNotInvolveRemoteHost(t *testing.T) {
	sim, _, a, b := testFabric(1)
	b.NIC(0).PostRDMARead(a.ID(), 5000, nil)
	sim.Run()
	defer sim.Close()
	// Nothing must appear in a's completion queue: the pull is invisible
	// to the remote host.
	if a.NIC(0).Pending() != 0 {
		t.Errorf("remote host saw %d completions, want 0", a.NIC(0).Pending())
	}
	if b.NIC(0).Pending() != 1 {
		t.Errorf("local host has %d completions, want 1", b.NIC(0).Pending())
	}
}

func TestMultirailIsolation(t *testing.T) {
	sim, _, a, b := testFabric(2)
	a.NIC(0).PostSend(b.ID(), 10, "rail0")
	a.NIC(1).PostSend(b.ID(), 10, "rail1")
	sim.Run()
	defer sim.Close()
	c0, ok0 := b.NIC(0).Poll()
	c1, ok1 := b.NIC(1).Poll()
	if !ok0 || c0.Meta != "rail0" {
		t.Errorf("rail 0 completion = %+v ok=%v", c0, ok0)
	}
	if !ok1 || c1.Meta != "rail1" {
		t.Errorf("rail 1 completion = %+v ok=%v", c1, ok1)
	}
}

func TestBandwidthScalesWithSize(t *testing.T) {
	sim, _, a, b := testFabric(1)
	a.NIC(0).PostSend(b.ID(), 1_000_000, nil)
	end := sim.Run()
	defer sim.Close()
	// 1 MB at 1 ns/B + 1 µs latency ≈ 1.001 ms.
	if end < 1_000_000 || end > 1_002_000 {
		t.Errorf("1MB delivery at %v, want ≈1.001ms", end)
	}
}

func TestPollOrderFIFO(t *testing.T) {
	sim, _, a, b := testFabric(1)
	a.NIC(0).PostSend(b.ID(), 10, 1)
	a.NIC(0).PostSend(b.ID(), 10, 2)
	a.NIC(0).PostSend(b.ID(), 10, 3)
	sim.Run()
	defer sim.Close()
	for want := 1; want <= 3; want++ {
		c, ok := b.NIC(0).Poll()
		if !ok || c.Meta != want {
			t.Fatalf("poll %d = %+v ok=%v", want, c, ok)
		}
	}
	if _, ok := b.NIC(0).Poll(); ok {
		t.Error("queue should be drained")
	}
}

func TestStats(t *testing.T) {
	sim, _, a, b := testFabric(1)
	a.NIC(0).PostSend(b.ID(), 10, nil)
	b.NIC(0).PostRDMARead(a.ID(), 10, nil)
	sim.Run()
	defer sim.Close()
	b.NIC(0).Poll()
	sent, _, _, _ := a.NIC(0).Stats()
	_, recvd, rdmas, polls := b.NIC(0).Stats()
	if sent != 1 || recvd != 1 || rdmas != 1 || polls != 1 {
		t.Errorf("stats = %d/%d/%d/%d, want 1/1/1/1", sent, recvd, rdmas, polls)
	}
}

func TestAddNodeClampsNICs(t *testing.T) {
	sim := simtime.New()
	f := NewFabric(sim, IBParams())
	n := f.AddNode(0)
	if n.NumNICs() != 1 {
		t.Errorf("NumNICs = %d, want 1", n.NumNICs())
	}
}

func TestMutexFIFO(t *testing.T) {
	sim := simtime.New()
	defer sim.Close()
	mu := sim.NewMutex()
	var order []string
	hold := func(name string, start, dur simtime.Duration) {
		sim.Spawn(name, func(p *simtime.Proc) {
			p.Sleep(start)
			mu.Lock(p)
			order = append(order, name)
			p.Sleep(dur)
			mu.Unlock()
		})
	}
	hold("a", 0, 100)
	hold("b", 10, 100) // queued while a holds
	hold("c", 20, 100) // queued behind b
	sim.Run()
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Errorf("order = %v, want [a b c]", order)
	}
}

func TestMutexUnlockedPanics(t *testing.T) {
	sim := simtime.New()
	mu := sim.NewMutex()
	defer func() {
		if recover() == nil {
			t.Error("Unlock of unlocked mutex should panic")
		}
	}()
	mu.Unlock()
}
