// Package simnet models a high-performance cluster interconnect in
// virtual time: nodes with one or more NICs, point-to-point messages with
// configurable wire latency and bandwidth, RDMA-Read transfers that
// complete without remote host involvement, and polled completion queues.
//
// It substitutes for the Myri-10G and ConnectX InfiniBand hardware of the
// paper's BORDERLINE cluster. The experiments of Figures 4-7 depend on
// protocol structure — who progresses the rendezvous handshake, whether
// data can be pulled by the NIC — rather than on silicon, so a timing
// model with calibrated constants preserves the comparisons.
package simnet

import (
	"fmt"

	"pioman/internal/simtime"
)

// Params are the interconnect timing constants (virtual nanoseconds,
// except NsPerByte).
type Params struct {
	// Latency is the one-way wire latency for any message.
	Latency simtime.Duration
	// NsPerByte is the inverse bandwidth of the wire.
	NsPerByte float64
	// SendOverhead is host CPU time to post a send descriptor.
	SendOverhead simtime.Duration
	// RecvOverhead is host CPU time to consume a completion.
	RecvOverhead simtime.Duration
	// PollCost is host CPU time for one completion-queue poll, hit or
	// miss.
	PollCost simtime.Duration
	// RDMASetup is the target-side NIC cost to start an RDMA Read.
	RDMASetup simtime.Duration
}

// IBParams returns constants approximating the ConnectX InfiniBand DDR
// fabric of the BORDERLINE cluster: ≈1.3 µs one-way latency, ≈1.5 GB/s
// effective bandwidth.
func IBParams() Params {
	return Params{
		Latency:      1300,
		NsPerByte:    0.65,
		SendOverhead: 300,
		RecvOverhead: 200,
		PollCost:     150,
		RDMASetup:    600,
	}
}

// CompletionKind discriminates completion-queue entries.
type CompletionKind int

const (
	// CompRecv signals an inbound message (control or eager data).
	CompRecv CompletionKind = iota
	// CompSendDone signals a locally posted send has left the NIC.
	CompSendDone
	// CompRDMADone signals a locally posted RDMA Read has delivered all
	// remote data into local memory.
	CompRDMADone
)

// String names the completion kind.
func (k CompletionKind) String() string {
	switch k {
	case CompRecv:
		return "recv"
	case CompSendDone:
		return "send-done"
	case CompRDMADone:
		return "rdma-done"
	default:
		return fmt.Sprintf("CompletionKind(%d)", int(k))
	}
}

// Completion is one completion-queue entry.
type Completion struct {
	Kind CompletionKind
	// From is the source node id (CompRecv only).
	From int
	// Size is the payload size in bytes.
	Size int
	// Meta carries protocol state (e.g. the request the entry belongs
	// to); opaque to the fabric.
	Meta any
}

// Fabric is a full-mesh interconnect between nodes sharing one
// simulation clock.
type Fabric struct {
	sim    *simtime.Sim
	params Params
	nodes  []*Node
}

// NewFabric creates an empty fabric.
func NewFabric(sim *simtime.Sim, params Params) *Fabric {
	return &Fabric{sim: sim, params: params}
}

// Sim returns the fabric's simulation clock.
func (f *Fabric) Sim() *simtime.Sim { return f.sim }

// Params returns the fabric timing constants.
func (f *Fabric) Params() Params { return f.params }

// AddNode creates a node with the given number of NICs (rails).
func (f *Fabric) AddNode(nics int) *Node {
	if nics < 1 {
		nics = 1
	}
	n := &Node{fabric: f, id: len(f.nodes)}
	for i := 0; i < nics; i++ {
		n.nics = append(n.nics, &NIC{node: n, rail: i})
	}
	f.nodes = append(f.nodes, n)
	return n
}

// Node returns the node with the given id.
func (f *Fabric) Node(id int) *Node { return f.nodes[id] }

// Node is one cluster machine attached to the fabric.
type Node struct {
	fabric *Fabric
	id     int
	nics   []*NIC
}

// ID returns the node id.
func (n *Node) ID() int { return n.id }

// Params returns the fabric timing constants.
func (n *Node) Params() Params { return n.fabric.params }

// NIC returns rail i of the node.
func (n *Node) NIC(i int) *NIC { return n.nics[i] }

// NumNICs returns the number of rails.
func (n *Node) NumNICs() int { return len(n.nics) }

// NIC is one network interface with a polled completion queue. All
// methods must be called from simulation context (events or procs); the
// CPU-side costs (SendOverhead etc.) are charged explicitly via the
// *Cost accessors so that callers account them to the right virtual CPU.
type NIC struct {
	node *Node
	rail int
	cq   []Completion

	sent     int
	received int
	rdmas    int
	polls    int
}

// Rail returns the NIC's rail index.
func (n *NIC) Rail() int { return n.rail }

// transferTime returns wire time for size bytes.
func (n *NIC) transferTime(size int) simtime.Duration {
	p := n.node.fabric.params
	return p.Latency + simtime.Duration(float64(size)*p.NsPerByte)
}

// PostSend transmits size bytes to the same rail of the destination node.
// The message lands in the destination NIC's completion queue after the
// wire time; a CompSendDone lands in the local queue once the payload has
// left the NIC. The caller is responsible for charging SendOverhead to
// the posting CPU.
func (n *NIC) PostSend(dst int, size int, meta any) {
	f := n.node.fabric
	peer := f.nodes[dst].nics[n.rail]
	n.sent++
	wire := n.transferTime(size)
	f.sim.After(wire, func() {
		peer.received++
		peer.cq = append(peer.cq, Completion{Kind: CompRecv, From: n.node.id, Size: size, Meta: meta})
	})
	f.sim.After(simtime.Duration(float64(size)*f.params.NsPerByte), func() {
		n.cq = append(n.cq, Completion{Kind: CompSendDone, Size: size, Meta: meta})
	})
}

// PostRDMARead pulls size bytes from peer's memory into local memory
// without involving the peer's host CPU: completion arrives locally after
// a request flight, the data flight, and the NIC setup cost.
func (n *NIC) PostRDMARead(peer int, size int, meta any) {
	f := n.node.fabric
	n.rdmas++
	total := f.params.RDMASetup + f.params.Latency + n.transferTime(size)
	f.sim.After(total, func() {
		n.cq = append(n.cq, Completion{Kind: CompRDMADone, Size: size, Meta: meta})
	})
}

// Poll pops the oldest completion, reporting false when the queue is
// empty. The caller charges PollCost to the polling CPU.
func (n *NIC) Poll() (Completion, bool) {
	n.polls++
	if len(n.cq) == 0 {
		return Completion{}, false
	}
	c := n.cq[0]
	n.cq = n.cq[1:]
	return c, true
}

// Pending returns the number of unconsumed completions.
func (n *NIC) Pending() int { return len(n.cq) }

// Stats returns (messages sent, messages received, RDMA reads, polls).
func (n *NIC) Stats() (sent, received, rdmas, polls int) {
	return n.sent, n.received, n.rdmas, n.polls
}
