package experiments

import (
	"fmt"
	"strings"

	"pioman/internal/simmpi"
	"pioman/internal/simnet"
	"pioman/internal/simtime"
	"pioman/internal/stats"
)

// ComputeSide says which process computes between the non-blocking call
// and its Wait in the overlap benchmark [Shet et al., 2008].
type ComputeSide int

const (
	// ComputeSender: computation on the sender (paper Figure 5).
	ComputeSender ComputeSide = iota
	// ComputeReceiver: computation on the receiver (Figure 6).
	ComputeReceiver
	// ComputeBoth: computation on both sides (Figure 7).
	ComputeBoth
)

// String names the side as in the figure captions.
func (s ComputeSide) String() string {
	switch s {
	case ComputeSender:
		return "sender"
	case ComputeReceiver:
		return "receiver"
	case ComputeBoth:
		return "both"
	default:
		return fmt.Sprintf("ComputeSide(%d)", int(s))
	}
}

// OverlapPoint is one measurement: computation time vs. achieved overlap
// ratio (Tcomp / Ttotal).
type OverlapPoint struct {
	ComputeUS float64
	Ratio     float64
}

// RunOverlap runs one overlap measurement: a non-blocking transfer of
// size bytes, compute for computeUS µs on the given side(s), then wait.
// Overlap = Tcomp / Ttotal measured on the computing side (max of sides
// for ComputeBoth).
func RunOverlap(kind simmpi.EngineKind, side ComputeSide, size int, computeUS float64) OverlapPoint {
	sim := simtime.New()
	defer sim.Close()
	fabric := simnet.NewFabric(sim, simnet.IBParams())
	sNode := fabric.AddNode(1)
	rNode := fabric.AddNode(1)
	sender := simmpi.NewEngine(sim, sNode, simmpi.DefaultConfig(kind))
	receiver := simmpi.NewEngine(sim, rNode, simmpi.DefaultConfig(kind))
	sender.Start()
	receiver.Start()

	compute := simtime.Duration(computeUS * 1000)
	var senderTotal, receiverTotal simtime.Duration

	sim.Spawn("sender", func(p *simtime.Proc) {
		start := p.Now()
		req := sender.Isend(p, rNode.ID(), 1, size)
		if side == ComputeSender || side == ComputeBoth {
			p.Sleep(compute)
		}
		sender.Wait(p, req)
		senderTotal = p.Now() - start
	})
	sim.Spawn("receiver", func(p *simtime.Proc) {
		start := p.Now()
		req := receiver.Irecv(p, sNode.ID(), 1, size)
		if side == ComputeReceiver || side == ComputeBoth {
			p.Sleep(compute)
		}
		receiver.Wait(p, req)
		receiverTotal = p.Now() - start
	})
	sim.Run()

	var total simtime.Duration
	switch side {
	case ComputeSender:
		total = senderTotal
	case ComputeReceiver:
		total = receiverTotal
	default:
		total = senderTotal
		if receiverTotal > total {
			total = receiverTotal
		}
	}
	ratio := 0.0
	if total > 0 {
		ratio = float64(compute) / float64(total)
	}
	return OverlapPoint{ComputeUS: computeUS, Ratio: ratio}
}

// overlapSweep returns the paper's x-axis for each message size:
// 0-200 µs for 32 KB, 0-2000 µs for 1 MB.
func overlapSweep(size int) []float64 {
	if size <= 32<<10 {
		return []float64{0, 12.5, 25, 50, 75, 100, 125, 150, 175, 200}
	}
	return []float64{0, 125, 250, 500, 750, 1000, 1250, 1500, 1750, 2000}
}

// overlapEngines are the curves of Figures 5-7.
var overlapEngines = []simmpi.EngineKind{
	simmpi.MVAPICHLike, simmpi.OpenMPILike, simmpi.PIOManLike,
}

// RunOverlapFigure produces the two panels (32 KB and 1 MB) of one
// overlap figure.
func RunOverlapFigure(side ComputeSide) []stats.Figure {
	var figs []stats.Figure
	for _, size := range []int{32 << 10, 1 << 20} {
		name := "32 KB"
		if size == 1<<20 {
			name = "1 MB"
		}
		phrase := side.String() + " side"
		if side == ComputeBoth {
			phrase = "both sides"
		}
		fig := stats.Figure{
			Title:  fmt.Sprintf("Overlap, computation on %s, %s", phrase, name),
			XLabel: "computation time (µs)",
			YLabel: "overlap ratio",
		}
		for _, kind := range overlapEngines {
			s := fig.AddSeries(kind.String())
			for _, comp := range overlapSweep(size) {
				pt := RunOverlap(kind, side, size, comp)
				s.Add(pt.ComputeUS, pt.Ratio)
			}
		}
		figs = append(figs, fig)
	}
	return figs
}

func renderOverlap(side ComputeSide, shape string) func() (string, error) {
	return func() (string, error) {
		var b strings.Builder
		for _, fig := range RunOverlapFigure(side) {
			b.WriteString(fig.String())
			b.WriteByte('\n')
		}
		b.WriteString(shape)
		return b.String(), nil
	}
}

func init() {
	register(Experiment{
		ID:          "fig5",
		Paper:       "Figure 5",
		Description: "Overlap benchmark, computation on the sender side (32 KB and 1 MB panels).",
		Run: renderOverlap(ComputeSender,
			"Paper shape: all engines overlap on the sender side — the RDMA-Read\n"+
				"rendezvous lets the receiver pull data without the sender's host.\n"),
	})
	register(Experiment{
		ID:          "fig6",
		Paper:       "Figure 6",
		Description: "Overlap benchmark, computation on the receiver side (32 KB and 1 MB panels).",
		Run: renderOverlap(ComputeReceiver,
			"Paper shape: MVAPICH and OpenMPI do not overlap when the receiver\n"+
				"computes (ratio saturates at Tcomp/(Tcomp+Txfer)); PIOMan's background\n"+
				"progression drives the handshake and reaches ratios near 1.\n"),
	})
	register(Experiment{
		ID:          "fig7",
		Paper:       "Figure 7",
		Description: "Overlap benchmark, computation on both sides (32 KB and 1 MB panels).",
		Run: renderOverlap(ComputeBoth,
			"Paper shape: baselines overlap only the sender side, so the receiver\n"+
				"side serializes; PIOMan overlaps both and approaches ratio 1.\n"),
	})
}
