package experiments

import (
	"fmt"
	"strings"

	"pioman/internal/simmachine"
	"pioman/internal/stats"
	"pioman/internal/topology"
)

// Paper-published micro-benchmark values (nanoseconds).
var (
	// Table I, borderline (4-way dual-core Opteron 8218).
	paperT1PerCore = []float64{770, 788, 839, 818, 846, 858, 858, 1819}
	paperT1PerChip = []float64{1114, 1059, 1157, 1199}
	paperT1Global  = 4720.0

	// Table II, kwak (4-way quad-core Opteron 8347HE).
	paperT2PerCore = []float64{723, 697, 697, 697, 1777, 1787, 1776, 1777,
		1777, 1867, 1866, 1867, 1747, 1737, 1737, 1787}
	paperT2PerChip = []float64{1905, 2037, 2046, 5216}
	paperT2Global  = 13585.0
)

// TableResult is the reproduced Table I or Table II.
type TableResult struct {
	Machine    string
	PerCore    []float64 // simulated ns, indexed by CPU
	PerChip    []float64 // simulated ns, indexed by chip
	Global     float64
	GlobalDist []int // task executions per core on the global queue

	PaperPerCore []float64
	PaperPerChip []float64
	PaperGlobal  float64
}

// taskBenchIters balances accuracy and run time for table harnesses.
const taskBenchIters = 300

// RunTable reproduces Table I ("borderline") or Table II ("kwak").
func RunTable(machine string) (*TableResult, error) {
	topo, err := topology.ByName(machine)
	if err != nil {
		return nil, err
	}
	params, err := simmachine.ParamsFor(machine)
	if err != nil {
		return nil, err
	}
	m := simmachine.NewMachine(topo, params)
	res := &TableResult{Machine: machine}
	for cpu := 0; cpu < topo.NCPUs; cpu++ {
		res.PerCore = append(res.PerCore, m.PerCoreBench(cpu, taskBenchIters).MeanNS)
	}
	// Both evaluation machines have four chips (one per NUMA node).
	for chip := 0; chip < 4; chip++ {
		res.PerChip = append(res.PerChip, m.PerChipBench(chip, taskBenchIters).MeanNS)
	}
	g := m.GlobalBench(taskBenchIters)
	res.Global = g.MeanNS
	res.GlobalDist = g.ExecPerCore
	switch machine {
	case "borderline":
		res.PaperPerCore, res.PaperPerChip, res.PaperGlobal = paperT1PerCore, paperT1PerChip, paperT1Global
	case "kwak":
		res.PaperPerCore, res.PaperPerChip, res.PaperGlobal = paperT2PerCore, paperT2PerChip, paperT2Global
	}
	return res, nil
}

// Render formats the result in the paper's table layout, with the paper's
// own measurements interleaved for comparison.
func (r *TableResult) Render() string {
	var b strings.Builder
	t := stats.Table{
		Title:   fmt.Sprintf("Micro-benchmark of task scheduling on %s (simulated vs. paper, ns)", r.Machine),
		Header:  []string{"queue level", "source", "values"},
		Caption: "Time given in nanoseconds; task submitted by core #0.",
	}
	t.AddRow("per-core queues", "simulated", joinF(r.PerCore))
	t.AddRow("per-core queues", "paper", joinF(r.PaperPerCore))
	t.AddRow("per-chip queues", "simulated", joinF(r.PerChip))
	t.AddRow("per-chip queues", "paper", joinF(r.PaperPerChip))
	t.AddRow("global queue", "simulated", fmt.Sprintf("%.0f", r.Global))
	t.AddRow("global queue", "paper", fmt.Sprintf("%.0f", r.PaperGlobal))
	b.WriteString(t.String())
	fmt.Fprintf(&b, "global-queue task distribution per core: %v\n", r.GlobalDist)
	perNode := map[int]int{}
	topo, _ := topology.ByName(r.Machine)
	for cpu, n := range r.GlobalDist {
		perNode[topo.NUMAOf[cpu]] += n
	}
	fmt.Fprintf(&b, "global-queue task distribution per NUMA node: %v\n", perNode)
	return b.String()
}

func joinF(vals []float64) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fmt.Sprintf("%.0f", v)
	}
	return strings.Join(parts, " ")
}

func init() {
	register(Experiment{
		ID:          "table1",
		Paper:       "Table I",
		Description: "Task-scheduling micro-benchmark on borderline (8 cores): per-core, per-chip, global queues.",
		Run: func() (string, error) {
			r, err := RunTable("borderline")
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
	})
	register(Experiment{
		ID:          "table2",
		Paper:       "Table II",
		Description: "Task-scheduling micro-benchmark on kwak (16 cores, 4 NUMA nodes): per-core, per-chip, global queues.",
		Run: func() (string, error) {
			r, err := RunTable("kwak")
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
	})
	register(Experiment{
		ID:          "ablation-biglock",
		Paper:       "§III motivation",
		Description: "Hierarchical queues vs. a single global list: the big-lock penalty at each placement.",
		Run:         runBigLockAblation,
	})
}

// runBigLockAblation contrasts hierarchical placement with the naive
// single-global-list design the paper argues against in §III.
func runBigLockAblation() (string, error) {
	var b strings.Builder
	for _, machine := range []string{"borderline", "kwak"} {
		topo, err := topology.ByName(machine)
		if err != nil {
			return "", err
		}
		params, _ := simmachine.ParamsFor(machine)
		m := simmachine.NewMachine(topo, params)
		local := m.PerCoreBench(0, taskBenchIters).MeanNS
		chip := m.PerChipBench(0, taskBenchIters).MeanNS
		global := m.GlobalBench(taskBenchIters).MeanNS
		t := stats.Table{
			Title:  fmt.Sprintf("%s: hierarchical placement vs. big-lock global list", machine),
			Header: []string{"placement", "ns/task", "vs. local"},
		}
		t.AddRow("per-core (hierarchy)", fmt.Sprintf("%.0f", local), "1.0x")
		t.AddRow("per-chip (hierarchy)", fmt.Sprintf("%.0f", chip), fmt.Sprintf("%.1fx", chip/local))
		t.AddRow("global (big lock)", fmt.Sprintf("%.0f", global), fmt.Sprintf("%.1fx", global/local))
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	b.WriteString("A single shared list pays the global-queue cost for every task;\n" +
		"the hierarchy pays it only for tasks that genuinely span the machine.\n")
	return b.String(), nil
}
