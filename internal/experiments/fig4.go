package experiments

import (
	"fmt"
	"strings"

	"pioman/internal/simmpi"
	"pioman/internal/simnet"
	"pioman/internal/simtime"
	"pioman/internal/stats"
)

// MTLatencyPoint is one (thread count, one-way latency) measurement.
type MTLatencyPoint struct {
	Threads   int
	LatencyUS float64
}

// MTLatencyResult reproduces Figure 4: the OSU multi-threaded latency
// test with one sender and N receiver threads exchanging 4-byte
// messages.
type MTLatencyResult struct {
	Engine string
	Points []MTLatencyPoint
}

// mtRounds is how many ping-pongs each thread performs per measurement.
const mtRounds = 20

// RunMTLatency measures average one-way latency for the given engine and
// receiver thread count (the Figure 4 workload).
func RunMTLatency(kind simmpi.EngineKind, threads int) MTLatencyPoint {
	sim := simtime.New()
	defer sim.Close()
	fabric := simnet.NewFabric(sim, simnet.IBParams())
	sNode := fabric.AddNode(1)
	rNode := fabric.AddNode(1)
	sender := simmpi.NewEngine(sim, sNode, simmpi.DefaultConfig(kind))
	receiver := simmpi.NewEngine(sim, rNode, simmpi.DefaultConfig(kind))
	sender.Start()
	receiver.Start()

	// Receiver threads: each repeatedly posts a 4-byte receive on its own
	// tag and sends a 4-byte reply — MPI_Recv / MPI_Send in the OSU test.
	for th := 0; th < threads; th++ {
		tag := th
		sim.Spawn(fmt.Sprintf("recv-thread-%d", tag), func(p *simtime.Proc) {
			for r := 0; r < mtRounds; r++ {
				req := receiver.Irecv(p, sNode.ID(), tag, 4)
				receiver.Wait(p, req)
				rep := receiver.Isend(p, sNode.ID(), replyTag(tag), 4)
				receiver.Wait(p, rep)
			}
		})
	}

	// The sending process ping-pongs with each thread in turn.
	var sum simtime.Duration
	var count int
	sim.Spawn("sender", func(p *simtime.Proc) {
		for r := 0; r < mtRounds; r++ {
			for th := 0; th < threads; th++ {
				start := p.Now()
				sender.Wait(p, sender.Isend(p, rNode.ID(), th, 4))
				sender.Wait(p, sender.Irecv(p, rNode.ID(), replyTag(th), 4))
				sum += p.Now() - start
				count++
			}
		}
	})
	sim.Run()

	lat := 0.0
	if count > 0 {
		lat = float64(sum) / float64(count) / 2000.0 // RTT ns -> one-way µs
	}
	return MTLatencyPoint{Threads: threads, LatencyUS: lat}
}

func replyTag(tag int) int { return 1_000_000 + tag }

// Fig4ThreadCounts is the sweep of the paper's x-axis (1..128 threads).
var Fig4ThreadCounts = []int{1, 2, 4, 8, 16, 32, 64, 128}

// RunFig4 produces the Figure 4 curves for MVAPICH-like and PIOMan-like
// engines. (The paper could not run OpenMPI on this test — it
// segfaulted despite MPI_THREAD_MULTIPLE being requested.)
func RunFig4() []MTLatencyResult {
	var out []MTLatencyResult
	for _, kind := range []simmpi.EngineKind{simmpi.MVAPICHLike, simmpi.PIOManLike} {
		r := MTLatencyResult{Engine: kind.String()}
		for _, n := range Fig4ThreadCounts {
			r.Points = append(r.Points, RunMTLatency(kind, n))
		}
		out = append(out, r)
	}
	return out
}

func renderFig4() (string, error) {
	results := RunFig4()
	fig := stats.Figure{
		Title:  "Multi-threaded latency test (Figure 4)",
		XLabel: "threads",
		YLabel: "one-way latency (µs)",
	}
	for _, r := range results {
		s := fig.AddSeries(r.Engine)
		for _, p := range r.Points {
			s.Add(float64(p.Threads), p.LatencyUS)
		}
	}
	var b strings.Builder
	b.WriteString(fig.String())
	b.WriteString("\nPaper shape: MVAPICH latency grows with receiver threads (polling\n" +
		"contention); PIOMan stays almost constant even past the core count.\n" +
		"OpenMPI is absent in the paper too: it segfaulted on this test.\n")
	return b.String(), nil
}

func init() {
	register(Experiment{
		ID:          "fig4",
		Paper:       "Figure 4",
		Description: "OSU multi-threaded latency test: 4-byte ping-pong with 1..128 receiver threads.",
		Run:         renderFig4,
	})
}
