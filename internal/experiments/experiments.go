// Package experiments contains one harness per table and figure of the
// paper's evaluation (§V). Each harness builds its workload, runs it on
// the simulation substrates (simmachine for the scheduling
// micro-benchmarks, simnet/simmpi for the communication benchmarks), and
// renders output in the paper's format alongside the paper's published
// values so shapes can be compared directly.
//
// The cmd/piobench binary and the repository-level benchmarks are thin
// wrappers over this package.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Experiment is one reproducible artifact of the paper.
type Experiment struct {
	// ID is the handle used by `piobench -run <id>` (e.g. "table1").
	ID string
	// Paper names the artifact in the paper (e.g. "Table I").
	Paper string
	// Description says what is measured.
	Description string
	// Run executes the experiment and returns rendered output.
	Run func() (string, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// ByID looks up an experiment.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[strings.ToLower(strings.TrimSpace(id))]
	return e, ok
}

// All returns every experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RunAll executes every experiment in ID order and concatenates outputs.
func RunAll() (string, error) {
	var b strings.Builder
	for _, e := range All() {
		out, err := e.Run()
		if err != nil {
			return b.String(), fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintf(&b, "### %s — %s\n%s\n%s\n", e.ID, e.Paper, e.Description, out)
	}
	return b.String(), nil
}
