package experiments

import (
	"strings"
	"testing"

	"pioman/internal/simmpi"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "table2", "fig4", "fig5", "fig6", "fig7", "ablation-biglock"}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) < len(want) {
		t.Errorf("All() returned %d experiments, want >= %d", len(All()), len(want))
	}
}

func TestByIDNormalizes(t *testing.T) {
	if _, ok := ByID(" Table1 "); !ok {
		t.Error("ByID should trim and lowercase")
	}
	if _, ok := ByID("nonesuch"); ok {
		t.Error("unknown id should not resolve")
	}
}

func TestAllSorted(t *testing.T) {
	ids := All()
	for i := 1; i < len(ids); i++ {
		if ids[i-1].ID >= ids[i].ID {
			t.Errorf("All() not sorted: %q before %q", ids[i-1].ID, ids[i].ID)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	r, err := RunTable("borderline")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerCore) != 8 || len(r.PerChip) != 4 {
		t.Fatalf("row lengths = %d/%d, want 8/4", len(r.PerCore), len(r.PerChip))
	}
	// Paper shape assertions for Table I.
	local := r.PerCore[0]
	if local < 600 || local > 900 {
		t.Errorf("local per-core = %.0f, want ≈770", local)
	}
	for chip, v := range r.PerChip {
		if v < local*0.9 {
			t.Errorf("per-chip[%d] = %.0f should not undercut local %.0f", chip, v, local)
		}
	}
	if r.Global < 2500 || r.Global > 8000 {
		t.Errorf("global = %.0f, want ≈4720", r.Global)
	}
	if r.Global < 2*r.PerChip[1] {
		t.Errorf("global (%.0f) must dominate per-chip (%.0f)", r.Global, r.PerChip[1])
	}
	out := r.Render()
	for _, want := range []string{"per-core queues", "paper", "4720", "global queue"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	r, err := RunTable("kwak")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerCore) != 16 || len(r.PerChip) != 4 {
		t.Fatalf("row lengths = %d/%d, want 16/4", len(r.PerCore), len(r.PerChip))
	}
	local := r.PerCore[0]
	remote := r.PerCore[8]
	if remote-local < 600 {
		t.Errorf("kwak remote NUMA overhead = %.0f, want ≈1µs", remote-local)
	}
	if r.Global < 8000 || r.Global > 22000 {
		t.Errorf("kwak global = %.0f, want ≈13585", r.Global)
	}
	// Growth with core count: 16-core global must exceed 8-core global.
	r8, err := RunTable("borderline")
	if err != nil {
		t.Fatal(err)
	}
	if r.Global < 1.8*r8.Global {
		t.Errorf("global queue cost should grow quickly with cores (%.0f vs %.0f)", r.Global, r8.Global)
	}
}

func TestRunTableUnknownMachine(t *testing.T) {
	if _, err := RunTable("nonesuch"); err == nil {
		t.Error("unknown machine should fail")
	}
}

func TestFig4Shape(t *testing.T) {
	mv1 := RunMTLatency(simmpi.MVAPICHLike, 1)
	mv64 := RunMTLatency(simmpi.MVAPICHLike, 64)
	pm1 := RunMTLatency(simmpi.PIOManLike, 1)
	pm64 := RunMTLatency(simmpi.PIOManLike, 64)

	// MVAPICH grows markedly with threads; PIOMan stays flat; base
	// latency favours MVAPICH; at high thread counts PIOMan wins.
	if mv64.LatencyUS < 4*mv1.LatencyUS {
		t.Errorf("MVAPICH: %.1f µs @1 -> %.1f µs @64, want strong growth", mv1.LatencyUS, mv64.LatencyUS)
	}
	if pm64.LatencyUS > 1.5*pm1.LatencyUS {
		t.Errorf("PIOMan: %.1f µs @1 -> %.1f µs @64, want flat", pm1.LatencyUS, pm64.LatencyUS)
	}
	if mv1.LatencyUS > pm1.LatencyUS {
		t.Errorf("at 1 thread MVAPICH (%.1f) should beat PIOMan (%.1f)", mv1.LatencyUS, pm1.LatencyUS)
	}
	if pm64.LatencyUS > mv64.LatencyUS {
		t.Errorf("at 64 threads PIOMan (%.1f) should beat MVAPICH (%.1f)", pm64.LatencyUS, mv64.LatencyUS)
	}
}

func TestFig5SenderSideEveryoneOverlaps(t *testing.T) {
	// At Tcomp comfortably above the transfer time, all engines reach a
	// high overlap ratio on the sender side.
	for _, kind := range overlapEngines {
		pt := RunOverlap(kind, ComputeSender, 1<<20, 1500)
		if pt.Ratio < 0.9 {
			t.Errorf("%v sender-side overlap @1.5ms = %.2f, want > 0.9", kind, pt.Ratio)
		}
	}
}

func TestFig6ReceiverSideOnlyPIOManOverlaps(t *testing.T) {
	pioman := RunOverlap(simmpi.PIOManLike, ComputeReceiver, 1<<20, 1500)
	mvapich := RunOverlap(simmpi.MVAPICHLike, ComputeReceiver, 1<<20, 1500)
	openmpi := RunOverlap(simmpi.OpenMPILike, ComputeReceiver, 1<<20, 1500)
	if pioman.Ratio < 0.9 {
		t.Errorf("PIOMan receiver-side overlap = %.2f, want > 0.9", pioman.Ratio)
	}
	// Baselines saturate near Tcomp/(Tcomp+Txfer) ≈ 1500/2185 ≈ 0.69.
	for _, pt := range []OverlapPoint{mvapich, openmpi} {
		if pt.Ratio > 0.8 {
			t.Errorf("baseline receiver-side overlap = %.2f, want < 0.8 (no progression)", pt.Ratio)
		}
	}
	if pioman.Ratio <= mvapich.Ratio {
		t.Error("PIOMan must beat MVAPICH on receiver-side overlap")
	}
}

func TestFig7BothSidesPIOManWins(t *testing.T) {
	pioman := RunOverlap(simmpi.PIOManLike, ComputeBoth, 32<<10, 150)
	mvapich := RunOverlap(simmpi.MVAPICHLike, ComputeBoth, 32<<10, 150)
	if pioman.Ratio <= mvapich.Ratio {
		t.Errorf("both-sides overlap: PIOMan %.2f should beat MVAPICH %.2f", pioman.Ratio, mvapich.Ratio)
	}
	if pioman.Ratio < 0.85 {
		t.Errorf("PIOMan both-sides overlap = %.2f, want near 1", pioman.Ratio)
	}
}

func TestOverlapRatioMonotoneInCompute(t *testing.T) {
	// More computation means more to hide: the ratio must not decrease
	// along the sweep for PIOMan.
	prev := -1.0
	for _, comp := range overlapSweep(1 << 20) {
		pt := RunOverlap(simmpi.PIOManLike, ComputeReceiver, 1<<20, comp)
		if pt.Ratio < prev-0.02 {
			t.Errorf("overlap ratio dropped from %.3f to %.3f at %v µs", prev, pt.Ratio, comp)
		}
		prev = pt.Ratio
	}
}

func TestOverlapZeroComputeZeroRatio(t *testing.T) {
	pt := RunOverlap(simmpi.MVAPICHLike, ComputeSender, 32<<10, 0)
	if pt.Ratio != 0 {
		t.Errorf("zero compute should give ratio 0, got %.3f", pt.Ratio)
	}
}

func TestExperimentRunsProduceOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment renders are slow")
	}
	for _, e := range All() {
		out, err := e.Run()
		if err != nil {
			t.Errorf("%s: %v", e.ID, err)
			continue
		}
		if len(out) < 100 {
			t.Errorf("%s output suspiciously short: %q", e.ID, out)
		}
	}
}
