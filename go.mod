module pioman

go 1.24
