// Package pioman is a Go reproduction of "A scalable and generic task
// scheduling system for communication libraries" (Trahay & Denis, IEEE
// Cluster 2009) — the PIOMan I/O manager, the Marcel-style scheduler
// hooks it relies on, and the NewMadeleine-style communication engine
// built on top of it.
//
// The implementation lives under internal/:
//
//   - internal/core — the paper's contribution: the ltask engine with
//     topology-mapped hierarchical task queues (Algorithms 1 and 2),
//     overhauled for sub-context-switch overhead: cached O(1) placement
//     of pinned tasks, batched dequeue (one lock acquisition per batch
//     of up to 32 tasks), per-CPU sharded statistics and cache-line
//     padded queues (~2× faster pinned submit, 16-32× fewer
//     consumer-side lock acquisitions than lock-per-task; see
//     DESIGN.md), and topology-aware work stealing across sibling leaf
//     queues (Config.Steal + SubmitLocal: out-of-work CPUs migrate
//     locality-placed backlogs, re-homing pinned tasks rather than
//     running them off their CPU set);
//   - internal/cpuset, internal/topology — CPU sets and machine trees;
//   - internal/adapt — the measurement & feedback control plane:
//     lock-free online estimators (EWMA, windowed min/max, per-CPU
//     shards) and controllers behind adaptive drain batching
//     (Config.AdaptiveDrain), steal-window feedback (Steal.Adaptive)
//     and online rail calibration;
//   - internal/sched — lightweight threads with idle / context-switch /
//     timer keypoint hooks driving the task engine;
//   - internal/fabric — the libfabric-shaped provider layer (domains,
//     endpoints, completion queues, registered memory, per-rail
//     Capabilities), including an RDMA-style simulated rail with eager
//     inject, rendezvous-by-RMA-read and virtual-time completions, a
//     wall-clock loopback rail, and the Calibrate wrapper that turns
//     assumed capability envelopes into measured ones;
//   - internal/nmad, internal/mpi — the communication library (gates
//     over fabric rails with capability-aware multirail striping,
//     calibrated online under Config.Calibrate) and its MPI-flavoured
//     interface on the real runtime stack;
//   - internal/simtime, internal/simmachine, internal/simnet,
//     internal/simmpi, internal/experiments — the virtual-time
//     substrates and harnesses that regenerate every table and figure
//     of the paper's evaluation.
//
// See docs/ARCHITECTURE.md for the package map and dependency diagram,
// DESIGN.md for the engine's hot-path, work-stealing and adaptive-
// control design with measured numbers, and examples/README.md for
// seven guided programs.
package pioman
