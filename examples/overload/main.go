// Command overload demonstrates engine-level admission control under
// an incast storm: 32 sender engines each fire six 24 KiB rendezvous
// blocks at one receiver — 4.5 MiB of intent against per-gate credit
// budgets of 128 KiB — once under each submission policy:
//
//   - block:   over-budget sends park in a FIFO queue and drain as
//     earlier transfers complete. Everything lands; the queue, not the
//     receiver, absorbs the burst.
//   - reject:  over-budget sends fail fast with ErrAdmissionReject.
//     Callers with their own retry story see the overload instantly.
//   - degrade: past the 0.4 high-water utilization mark the gate turns
//     degraded and sheds NEW rendezvous offers while admitted work
//     drains — fewer transfers complete than under plain reject,
//     because the watermark bites before the hard budget does.
//
// One extra send carries an already-hopeless deadline and is refused
// at admission with ErrDeadlineExpired under every policy.
//
// The run is deterministic: a virtual clock, in-memory rails, and
// explicit progression — the table replays identically every time.
//
// Run with: go run ./examples/overload
package main

import (
	"fmt"
	"sync/atomic"

	"pioman/internal/admit"
	"pioman/internal/nmad"
)

const (
	senders  = 32
	perGate  = 6
	rdvSize  = 24 << 10
	gateCap  = 128 << 10
	demoWait = int64(1) << 40 // block policy: park until credits free
)

// outcome is one policy run's aggregated ledger.
type outcome struct {
	policy    string
	admitted  uint64
	blocked   uint64
	rejected  uint64
	shed      uint64
	deadline  uint64
	completed int
	failed    int
}

// runPolicy replays the identical incast deck under one policy.
func runPolicy(name string, policy nmad.AdmitPolicy) outcome {
	var clock atomic.Int64
	clock.Store(1)
	clk := func() int64 { return clock.Load() }

	recv := nmad.NewEngine(nmad.Config{NoAutoProgress: true, Clock: clk, RdvTimeout: 1 << 30})
	defer recv.Close()
	engines := []*nmad.Engine{recv}
	var sends []*nmad.Request
	var recvs []*nmad.Request
	for s := 0; s < senders; s++ {
		e := nmad.NewEngine(nmad.Config{
			NoAutoProgress: true, Clock: clk, RdvTimeout: 1 << 30,
			Admit: &admit.Config{
				GateRequests: 64, GateBytes: gateCap,
				HighWater: 0.4, LowWater: 0.2,
			},
			AdmitPolicy: policy,
			AdmitWait:   demoWait,
		})
		defer e.Close()
		engines = append(engines, e)
		da, db := nmad.MemPair()
		gs, err := e.NewGate(da)
		if err != nil {
			panic(err)
		}
		gr, err := recv.NewGate(db)
		if err != nil {
			panic(err)
		}
		for tag := uint64(1); tag <= perGate; tag++ {
			recvs = append(recvs, gr.Irecv(tag))
			sends = append(sends, gs.Isend(tag, make([]byte, rdvSize)))
		}
		if s == 0 {
			// The doomed send: its deadline already passed, so admission
			// refuses it before a single frame exists.
			recvs = append(recvs, gr.Irecv(99))
			sends = append(sends, gs.IsendDeadline(99, make([]byte, rdvSize), clk()))
		}
	}

	for step := 0; step < 100000; step++ {
		done := true
		for _, r := range sends {
			if !r.Test() {
				done = false
				break
			}
		}
		if done {
			break
		}
		for _, e := range engines {
			e.Tasks().Schedule(0)
		}
	}
	for _, r := range recvs {
		if !r.Test() {
			r.Cancel()
		}
	}

	out := outcome{policy: name}
	for _, e := range engines[1:] {
		st := e.Stats()
		out.admitted += st.AdmitAdmitted
		out.blocked += st.AdmitBlocked
		out.rejected += st.AdmitRejected
		out.shed += st.AdmitShed
		out.deadline += st.DeadlineExpired
	}
	for _, r := range sends {
		if r.Err() == nil {
			out.completed++
		} else {
			out.failed++
		}
	}
	return out
}

func main() {
	fmt.Printf("=== admission control: 32→1 incast, %d×%d KiB per gate against a %d KiB budget ===\n\n",
		perGate, rdvSize>>10, gateCap>>10)

	results := []outcome{
		runPolicy("block", nmad.AdmitBlock),
		runPolicy("reject", nmad.AdmitReject),
		runPolicy("degrade", nmad.AdmitDegrade),
	}

	fmt.Printf("%-8s %9s %8s %9s %6s %9s %10s %7s\n",
		"policy", "admitted", "blocked", "rejected", "shed", "deadline", "completed", "failed")
	for _, o := range results {
		fmt.Printf("%-8s %9d %8d %9d %6d %9d %10d %7d\n",
			o.policy, o.admitted, o.blocked, o.rejected, o.shed, o.deadline, o.completed, o.failed)
	}

	fmt.Println(`
Reading the table:
  block    parks the over-budget sixth block per sender (32 blocked) and
           completes everything — backpressure reaches the submitter, not
           the receiver's state tables.
  reject   admits five blocks per sender (120 KiB of the 128 KiB budget)
           and fails the sixth fast: 32 visible ErrAdmissionReject errors.
  degrade  flips degraded once utilization crosses 0.4 (the third block)
           and sheds every later rendezvous offer: fewer completions than
           reject, because load-shedding starts before the budget is hard
           — that is the graceful-degradation trade.
  deadline the doomed send is refused at admission under every policy:
           a transfer whose deadline already passed never touches the wire.`)
}
