// TCP cluster: two MPI-like ranks talking over a real TCP connection
// with background progression — the runtime stack end to end on the
// loopback interface.
//
// By default the example runs both ranks in one process over
// 127.0.0.1. To run it across two terminals or machines:
//
//	go run ./examples/tcpcluster -listen :7777         # rank 1
//	go run ./examples/tcpcluster -connect host:7777    # rank 0
//
// With -http the process serves its operational surface while the
// ranks run: per-rank engine metrics on /metrics, progression
// liveness on /healthz, and profiles under /debug/pprof:
//
//	go run ./examples/tcpcluster -http 127.0.0.1:9187
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"strconv"
	"time"

	"pioman/internal/mpi"
	"pioman/internal/nmad"
	"pioman/internal/obs"
)

func main() {
	listen := flag.String("listen", "", "run rank 1, listening on this address")
	connect := flag.String("connect", "", "run rank 0, connecting to this address")
	httpAddr := flag.String("http", "", "serve /metrics, /healthz and /debug/pprof on this address while the ranks run")
	flag.Parse()

	var srv *obs.Server
	reg := obs.NewRegistry()
	health := obs.NewHealth()
	if *httpAddr != "" {
		reg.Register(obs.NewGoCollector())
		srv = obs.NewServer(obs.ServerConfig{Addr: *httpAddr, Registry: reg, Health: health})
		if err := srv.Start(); err != nil {
			panic(err)
		}
		defer srv.Shutdown(context.Background()) //nolint:errcheck // best-effort on exit
		fmt.Printf("serving metrics on http://%s/metrics\n", srv.Addr())
	}

	switch {
	case *listen != "":
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			panic(err)
		}
		defer ln.Close()
		fmt.Println("rank 1 listening on", ln.Addr())
		d, err := nmad.AcceptTCP(ln)
		if err != nil {
			panic(err)
		}
		runRank(1, d, reg, health)
	case *connect != "":
		d, err := nmad.DialTCP(*connect)
		if err != nil {
			panic(err)
		}
		runRank(0, d, reg, health)
	default:
		// Single-process demo: both ranks over real loopback TCP.
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		defer ln.Close()
		rank1Done := make(chan struct{})
		go func() {
			defer close(rank1Done)
			d, err := nmad.AcceptTCP(ln)
			if err != nil {
				panic(err)
			}
			runRank(1, d, reg, health)
		}()
		d, err := nmad.DialTCP(ln.Addr().String())
		if err != nil {
			panic(err)
		}
		runRank(0, d, reg, health)
		<-rank1Done
	}
}

// runRank executes a small ping-pong plus a large rendezvous transfer.
// Each rank registers its engines with the shared registry and health
// checker so one -http server exposes both sides of the conversation,
// distinguished by the engine="rankN" label.
func runRank(rank int, rail nmad.Driver, reg *obs.Registry, health *obs.Health) {
	engine := nmad.NewEngine(nmad.Config{})
	defer engine.Close()
	name := "rank" + strconv.Itoa(rank)
	reg.Register(obs.NewNmadCollector(name, engine), obs.NewCoreCollector(name, engine.Tasks()))
	health.Register(name, obs.NmadLiveness(engine, nil, 0))
	gate, err := engine.NewGate(rail)
	if err != nil {
		panic(err)
	}
	comm := mpi.NewComm(rank, engine)
	peer := 1 - rank
	comm.Connect(peer, gate)

	const rounds = 100
	payload := []byte("ping")
	start := time.Now()
	for i := 0; i < rounds; i++ {
		if rank == 0 {
			if err := comm.Send(peer, 1, payload); err != nil {
				panic(err)
			}
			if _, _, err := comm.Recv(peer, 2); err != nil {
				panic(err)
			}
		} else {
			if _, _, err := comm.Recv(peer, 1); err != nil {
				panic(err)
			}
			if err := comm.Send(peer, 2, payload); err != nil {
				panic(err)
			}
		}
	}
	rtt := time.Since(start) / rounds
	if rank == 0 {
		fmt.Printf("rank 0: %d ping-pongs over TCP, avg RTT %v\n", rounds, rtt)
	}

	// Large message: rank 0 sends 8 MB, rank 1 checks it.
	big := make([]byte, 8<<20)
	if rank == 0 {
		for i := range big {
			big[i] = byte(i * 3)
		}
		start = time.Now()
		if err := comm.Send(peer, 3, big); err != nil {
			panic(err)
		}
		fmt.Printf("rank 0: 8 MB rendezvous in %v\n", time.Since(start))
	} else {
		data, _, err := comm.Recv(peer, 3)
		if err != nil {
			panic(err)
		}
		bad := 0
		for i := range data {
			if data[i] != byte(i*3) {
				bad++
			}
		}
		fmt.Printf("rank 1: received %d bytes, %d corrupt\n", len(data), bad)
	}
}
