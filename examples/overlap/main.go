// Overlap: communication/computation overlap on the real runtime stack.
//
// The receiver posts a non-blocking receive for a large message, then
// computes without touching the library. Because nmad progresses the
// rendezvous through PIOMan tasks in the background, the transfer
// completes during the computation — the paper's Figure 6 behaviour,
// here on real goroutines rather than in simulation.
//
// Run with: go run ./examples/overlap
package main

import (
	"fmt"
	"time"

	"pioman/internal/mpi"
	"pioman/internal/nmad"
)

func main() {
	comms, engines, err := mpi.LocalCluster(2, nmad.Config{})
	if err != nil {
		panic(err)
	}
	defer func() {
		for _, e := range engines {
			e.Close()
		}
	}()
	sender, receiver := comms[0], comms[1]

	payload := make([]byte, 4<<20) // 4 MB: comfortably rendezvous
	for i := range payload {
		payload[i] = byte(i)
	}

	go func() {
		if err := sender.Send(1, 1, payload); err != nil {
			panic(err)
		}
	}()

	req, err := receiver.Irecv(0, 1)
	if err != nil {
		panic(err)
	}

	// "Compute" for a while: spin without calling into the library.
	computeStart := time.Now()
	spins := 0
	for time.Since(computeStart) < 50*time.Millisecond {
		spins++
	}
	computed := time.Since(computeStart)

	// Was the transfer already finished when the computation ended?
	overlapped := req.Test()

	waitStart := time.Now()
	data, err := req.Wait()
	if err != nil {
		panic(err)
	}
	waited := time.Since(waitStart)

	total := computed + waited
	fmt.Printf("received %d bytes\n", len(data))
	fmt.Printf("computation: %v (%d spins), residual wait after compute: %v\n", computed, spins, waited)
	fmt.Printf("transfer complete before Wait: %v\n", overlapped)
	fmt.Printf("overlap ratio (Tcomp/Ttotal): %.3f\n", float64(computed)/float64(total))
}
