// Command chaos demonstrates the deterministic cluster chaos harness
// (internal/cluster): tens of nmad engines on one seeded virtual
// clock, scripted traffic storms, seeded fault injection, and hard
// post-quiesce invariants — no hung requests, no leaked state, no
// pinned registrations, byte-exact delivery.
//
// The run is deterministic: the same seed replays the same universe —
// the same frames drop, the same retries fire, the same virtual-time
// percentiles come out. Change the seed and a different (but equally
// replayable) universe unfolds.
//
// Run with: go run ./examples/chaos [-seed N]
package main

import (
	"flag"
	"fmt"
	"strings"

	"pioman/internal/cluster"
)

func main() {
	seed := flag.Int64("seed", 1, "chaos seed (same seed → same universe)")
	flag.Parse()

	fmt.Printf("=== cluster chaos harness, seed %d ===\n\n", *seed)
	fmt.Println("Scenario 1: incast — 32 senders storm one shared ingress port.")
	fmt.Println("Scenario 2: partition-and-heal — an all-to-all shuffle cut in half")
	fmt.Println("            mid-flight, then healed and re-run on the same gates.")
	fmt.Println("Scenario 3: chaos-soup — 10% drop, 5% dup, jitter; the handshake")
	fmt.Println("            timeout retransmits until transfers complete or fail visibly.")
	fmt.Println("Scenario 4: broken-control — same loss, timeout DISABLED: the harness")
	fmt.Println("            must catch the hang the timeout exists to prevent.")
	fmt.Println()

	picks := map[string]bool{
		"incast": true, "partition-and-heal": true,
		"chaos-soup": true, "broken-control": true,
	}
	results := cluster.Run(*seed, func(name string) bool { return picks[name] })

	for _, r := range results {
		fmt.Printf("--- %s (%s)\n", r.Scenario, r.Description)
		fmt.Printf("    %d nodes, %d gate endpoints, %d transfers over %.2f ms of virtual time\n",
			r.Nodes, r.GateEndpoints, r.Transfers, float64(r.VirtualNs)/1e6)
		fmt.Printf("    outcome: %d completed byte-exact, %d failed visibly, %d canceled, %d hung\n",
			r.Completed, r.FailedVisibly, r.Canceled, r.Hung)
		if r.DroppedFrames+r.DupFrames+r.DroppedReads > 0 {
			fmt.Printf("    chaos:   %d frames dropped, %d duplicated, %d reads blackholed → %d retransmissions, %d timeouts\n",
				r.DroppedFrames, r.DupFrames, r.DroppedReads, r.RdvRetries, r.RdvTimeouts)
		}
		if r.Completed > 0 {
			fmt.Printf("    latency: p50 %.1f µs, p99 %.1f µs (virtual)\n",
				float64(r.LatencyP50Ns)/1e3, float64(r.LatencyP99Ns)/1e3)
		}
		switch {
		case r.Passed() && r.ExpectHang:
			fmt.Printf("    verdict: PASS — the hang invariant caught %d stuck requests,\n", r.Hung)
			fmt.Println("             which is exactly what this ablation must prove.")
		case r.Passed():
			fmt.Println("    verdict: PASS — every invariant held (no hangs, no leaks, byte-exact).")
		default:
			fmt.Printf("    verdict: FAIL — %s\n", strings.Join(r.Violations, "; "))
		}
		fmt.Println()
	}
	fmt.Println("Re-run with the same -seed: every number above replays identically.")
	fmt.Println("The full suite (16 scenarios, up to 512 nodes) ships as `go run ./cmd/clusterbench`.")
}
