// Multirail: capability-aware striping over heterogeneous rails.
//
// Two engines are connected by two simulated RDMA rails with very
// different envelopes — an 8 GB/s low-latency rail and a 1 GB/s
// high-latency one, the shape of the paper's BORDERLINE nodes carrying
// both ConnectX IB and Myri-10G. A large message is sent twice: once
// with the seed's even striping (half the payload on each rail, so the
// slow rail dominates completion) and once with capability-aware
// striping (chunks proportional to per-rail bandwidth, so both rails
// finish together). The fabric's virtual clock reports the modelled
// transfer times, and the per-rail statistics show where the bytes
// went. Small messages ride the lowest-latency rail either way.
//
// Run with: go run ./examples/multirail
package main

import (
	"fmt"

	"pioman/internal/fabric"
	"pioman/internal/nmad"
	"pioman/internal/simtime"
)

// transfer sends one large payload over a fresh fast+slow gate pair
// and returns the modelled transfer time plus the sender gate.
func transfer(even bool, payload []byte) (simtime.Duration, *nmad.Gate, nmad.Stats) {
	f := fabric.NewSimFabric(fabric.SimConfig{}) // free-running virtual time
	fast := f.OpenDomain(fabric.Capabilities{
		Latency: simtime.Microsecond, Bandwidth: 8e9, MaxInject: 16 << 10, RMA: true,
	})
	fastPeer := f.OpenDomain(fast.Capabilities())
	slow := f.OpenDomain(fabric.Capabilities{
		Latency: 5 * simtime.Microsecond, Bandwidth: 1e9, MaxInject: 16 << 10, RMA: true,
	})
	slowPeer := f.OpenDomain(slow.Capabilities())
	ea0, eb0 := fabric.Connect(fast, fastPeer)
	ea1, eb1 := fabric.Connect(slow, slowPeer)

	sender := nmad.NewEngine(nmad.Config{EvenStripe: even})
	receiver := nmad.NewEngine(nmad.Config{})
	defer sender.Close()
	defer receiver.Close()
	gs, err := sender.NewGateEndpoints(ea0, ea1)
	if err != nil {
		panic(err)
	}
	gr, err := receiver.NewGateEndpoints(eb0, eb1)
	if err != nil {
		panic(err)
	}

	// A few small messages first: they ride the lowest-latency rail.
	for i := 0; i < 4; i++ {
		if err := gs.Send(uint64(i), []byte(fmt.Sprintf("ctl-%d", i))); err != nil {
			panic(err)
		}
		if _, err := gr.Recv(uint64(i)); err != nil {
			panic(err)
		}
	}
	small := simtime.Duration(f.Now())

	done := make(chan error, 1)
	go func() {
		_, err := gr.Recv(99)
		done <- err
	}()
	if err := gs.Send(99, payload); err != nil {
		panic(err)
	}
	if err := <-done; err != nil {
		panic(err)
	}
	return simtime.Duration(f.Now()) - small, gs, sender.Stats()
}

func main() {
	payload := make([]byte, 8<<20)
	fmt.Printf("8 MiB over two rails: 8 GB/s @ 1µs  +  1 GB/s @ 5µs\n\n")

	evenTime, evenGate, _ := transfer(true, payload)
	capTime, capGate, st := transfer(false, payload)

	show := func(name string, d simtime.Duration, g *nmad.Gate) {
		fmt.Printf("%-18s %10v modelled transfer\n", name, simtime.Time(d))
		for i, r := range g.RailStats() {
			fmt.Printf("  rail %d (%s, %s): %d frames, %.2f MiB\n",
				i, r.Provider, r.Caps, r.Frames, float64(r.Bytes)/(1<<20))
		}
	}
	show("even striping", evenTime, evenGate)
	show("capability-aware", capTime, capGate)

	fmt.Printf("\ncapability-aware completes in %.0f%% of even striping's time\n",
		100*float64(capTime)/float64(evenTime))
	fmt.Printf("(rendezvous handshakes: %d, data fragments: %d, eager sends: %d)\n",
		st.RdvStarted, st.RdvData, st.EagerSent)
	fmt.Println("=> chunk sizes proportional to per-rail bandwidth make both rails finish together (Fig. 1's optimization layer, generalized to heterogeneous NICs)")
}
