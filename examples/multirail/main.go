// Multirail: the optimization layer of the paper's Figure 1.
//
// Two engines are connected by two rails. Small messages from several
// application flows are aggregated into shared packets; a large message
// is striped across both rails. The engine statistics show both
// optimizations at work: fewer frames than messages, and one rendezvous
// fragment per rail.
//
// Run with: go run ./examples/multirail
package main

import (
	"fmt"

	"pioman/internal/nmad"
)

func main() {
	sender := nmad.NewEngine(nmad.Config{Strategy: nmad.StrategyAggreg})
	receiver := nmad.NewEngine(nmad.Config{Strategy: nmad.StrategyAggreg})
	defer sender.Close()
	defer receiver.Close()

	// Two rails between the peers (a multirail cluster's two NICs).
	a0, b0 := nmad.MemPair()
	a1, b1 := nmad.MemPair()
	gs, err := sender.NewGate(a0, a1)
	if err != nil {
		panic(err)
	}
	gr, err := receiver.NewGate(b0, b1)
	if err != nil {
		panic(err)
	}

	// Four application flows each send eight small messages (Fig. 1's
	// numbered flows feeding the optimization layer).
	const flows, perFlow = 4, 8
	var reqs []*nmad.Request
	for flow := 0; flow < flows; flow++ {
		for i := 0; i < perFlow; i++ {
			msg := []byte(fmt.Sprintf("flow-%d-msg-%d", flow, i))
			reqs = append(reqs, gs.Isend(uint64(flow), msg))
		}
	}
	for _, r := range reqs {
		if err := r.Wait(); err != nil {
			panic(err)
		}
	}
	for flow := 0; flow < flows; flow++ {
		for i := 0; i < perFlow; i++ {
			data, err := gr.Recv(uint64(flow))
			if err != nil {
				panic(err)
			}
			_ = data
		}
	}

	// One large message striped across both rails.
	big := make([]byte, 2<<20)
	done := make(chan error, 1)
	go func() {
		_, err := gr.Recv(99)
		done <- err
	}()
	if err := gs.Send(99, big); err != nil {
		panic(err)
	}
	if err := <-done; err != nil {
		panic(err)
	}

	st := sender.Stats()
	fmt.Printf("messages sent:        %d\n", st.MsgsSent)
	fmt.Printf("frames on the wire:   %d\n", st.FramesSent)
	fmt.Printf("messages aggregated:  %d (into %d aggregate frames)\n", st.Aggregated, st.AggrFrames)
	fmt.Printf("rendezvous handshakes: %d, data fragments: %d (rails: %d)\n",
		st.RdvStarted, st.RdvData, gs.Rails())
	if st.FramesSent < st.MsgsSent {
		fmt.Println("=> multiplexing packed several application messages per packet (Fig. 1)")
	}
}
