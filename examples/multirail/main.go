// Multirail: capability-aware striping over heterogeneous rails, and
// the receiver-driven zero-copy rendezvous.
//
// Two engines are connected by two simulated RDMA rails with very
// different envelopes — an 8 GB/s low-latency rail and a 1 GB/s
// high-latency one, the shape of the paper's BORDERLINE nodes carrying
// both ConnectX IB and Myri-10G. A large message is sent three times:
// with the seed's even striping (half the payload on each rail, so the
// slow rail dominates completion), with capability-aware striping
// (chunks proportional to per-rail bandwidth, so both rails finish
// together), and finally with the receiver-driven pull rendezvous (the
// RTS offers per-rail remote keys, the receiver stripes and RMA-reads
// the chunks straight out of the sender's user buffer). The fabric's
// virtual clock reports the modelled transfer times, its copy counters
// prove where the bytes moved — host memcpy vs. NIC DMA — and the
// per-rail statistics show where they went. Small messages ride the
// lowest-latency rail either way.
//
// Run with: go run ./examples/multirail
package main

import (
	"fmt"

	"pioman/internal/fabric"
	"pioman/internal/nmad"
	"pioman/internal/simtime"
)

// result is one transfer configuration's outcome.
type result struct {
	time     simtime.Duration
	sendGate *nmad.Gate
	recvGate *nmad.Gate
	sent     nmad.Stats
	recv     nmad.Stats
	sim      fabric.SimStats
}

// transfer sends one large payload over a fresh fast+slow gate pair.
// Striping runs on whichever side drives the protocol — the sender for
// push mode, the receiver for pull mode — so both engines share the
// even/pull knobs.
func transfer(even, pull bool, payload []byte) result {
	f := fabric.NewSimFabric(fabric.SimConfig{}) // free-running virtual time
	fast := f.OpenDomain(fabric.Capabilities{
		Latency: simtime.Microsecond, Bandwidth: 8e9, MaxInject: 16 << 10, RMA: true,
	})
	fastPeer := f.OpenDomain(fast.Capabilities())
	slow := f.OpenDomain(fabric.Capabilities{
		Latency: 5 * simtime.Microsecond, Bandwidth: 1e9, MaxInject: 16 << 10, RMA: true,
	})
	slowPeer := f.OpenDomain(slow.Capabilities())
	ea0, eb0 := fabric.Connect(fast, fastPeer)
	ea1, eb1 := fabric.Connect(slow, slowPeer)

	sender := nmad.NewEngine(nmad.Config{EvenStripe: even, NoRdvPull: !pull})
	receiver := nmad.NewEngine(nmad.Config{EvenStripe: even, NoRdvPull: !pull})
	defer sender.Close()
	defer receiver.Close()
	gs, err := sender.NewGateEndpoints(ea0, ea1)
	if err != nil {
		panic(err)
	}
	gr, err := receiver.NewGateEndpoints(eb0, eb1)
	if err != nil {
		panic(err)
	}

	// A few small messages first: they ride the lowest-latency rail.
	for i := 0; i < 4; i++ {
		if err := gs.Send(uint64(i), []byte(fmt.Sprintf("ctl-%d", i))); err != nil {
			panic(err)
		}
		if _, err := gr.Recv(uint64(i)); err != nil {
			panic(err)
		}
	}
	small := simtime.Duration(f.Now())

	done := make(chan error, 1)
	go func() {
		_, err := gr.Recv(99)
		done <- err
	}()
	if err := gs.Send(99, payload); err != nil {
		panic(err)
	}
	if err := <-done; err != nil {
		panic(err)
	}
	return result{
		time:     simtime.Duration(f.Now()) - small,
		sendGate: gs, recvGate: gr,
		sent: sender.Stats(), recv: receiver.Stats(),
		sim: f.Stats(),
	}
}

func main() {
	payload := make([]byte, 8<<20)
	fmt.Printf("8 MiB over two rails: 8 GB/s @ 1µs  +  1 GB/s @ 5µs\n\n")

	evenPush := transfer(true, false, payload)
	capPush := transfer(false, false, payload)
	capPull := transfer(false, true, payload)

	show := func(name string, r result) {
		fmt.Printf("%-22s %10v modelled transfer\n", name, simtime.Time(r.time))
		for i, rs := range r.sendGate.RailStats() {
			pull := r.recvGate.RailStats()[i].PullBytes
			fmt.Printf("  rail %d (%s, %s): %d frames, %.2f MiB pushed, %.2f MiB pulled\n",
				i, rs.Provider, rs.Caps, rs.Frames,
				float64(rs.Bytes)/(1<<20), float64(pull)/(1<<20))
		}
	}
	show("even striping (push)", evenPush)
	show("capability-aware push", capPush)
	show("receiver-driven pull", capPull)

	fmt.Printf("\ncapability-aware completes in %.0f%% of even striping's time\n",
		100*float64(capPush.time)/float64(evenPush.time))
	fmt.Printf("(rendezvous handshakes: %d, data fragments: %d, eager sends: %d)\n",
		capPush.sent.RdvStarted, capPush.sent.RdvData, capPush.sent.EagerSent)

	fmt.Printf("\npull vs push, same capability-aware split (copy counters, 8 MiB payload):\n")
	fmt.Printf("  %-22s %12s %14s %12s %10s\n", "", "staged(host)", "recv-memcpy", "DMA(read)", "time")
	row := func(name string, r result) {
		fmt.Printf("  %-22s %9.1f MiB %11.1f MiB %9.1f MiB %10v\n", name,
			float64(r.sim.StagedCopiedBytes)/(1<<20),
			float64(r.recv.RecvCopiedBytes)/(1<<20),
			float64(r.sim.RMAReadBytes)/(1<<20),
			simtime.Time(r.time))
	}
	row("push", capPush)
	row("pull", capPull)
	fmt.Printf("  (pull: %d RMA reads, %d FIN; registrations interned by the cache: %d)\n",
		capPull.recv.RdvPulls, capPull.recv.RdvFins, capPull.sim.Registrations)

	fmt.Println("\n=> chunk sizes proportional to per-rail bandwidth make both rails finish together,")
	fmt.Println("   and the receiver-driven rendezvous moves them with zero host copies on either side")
}
