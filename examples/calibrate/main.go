// Command calibrate demonstrates online rail calibration: a gate over
// two simulated RDMA rails whose capabilities it was never told —
// an 8 GB/s rail and a 1 GB/s rail, published as all-zero envelopes —
// converges to capability-aware striping purely from observed
// completion timings, then re-converges after the two rails swap
// effective bandwidths mid-stream.
//
// Progression is driven from this goroutine on a free-running virtual
// clock, so the run is deterministic and the printed times are exact
// modelled durations. Three configurations are compared on the same
// workload: even striping (the seed behaviour), the oracle
// (capability-aware striping told the true envelopes up front), and
// the calibrated gate that has to find them out.
//
// Run with: go run ./examples/calibrate
package main

import (
	"fmt"

	"pioman/internal/fabric"
	"pioman/internal/nmad"
	"pioman/internal/simtime"
	"pioman/internal/stats"
)

var (
	fastCaps = fabric.Capabilities{Latency: simtime.Microsecond, Bandwidth: 8e9, MaxInject: 16 << 10, RMA: true}
	slowCaps = fabric.Capabilities{Latency: 2 * simtime.Microsecond, Bandwidth: 1e9, MaxInject: 16 << 10, RMA: true}
)

// rig is one sender/receiver pair over the fast+slow rail pair.
type rig struct {
	f                *fabric.SimFabric
	sender, receiver *nmad.Engine
	ga, gb           *nmad.Gate
	doms             [2][]*fabric.SimDomain
}

func newRig(calibrate, even bool) *rig {
	r := &rig{f: fabric.NewSimFabric(fabric.SimConfig{SendCompletions: true})}
	var sEps, rEps [2]fabric.Endpoint
	for i, caps := range []fabric.Capabilities{fastCaps, slowCaps} {
		a := r.f.OpenDomain(caps)
		b := r.f.OpenDomain(caps)
		sEps[i], rEps[i] = fabric.Connect(a, b)
		r.doms[i] = []*fabric.SimDomain{a, b}
	}
	r.sender = nmad.NewEngine(nmad.Config{NoAutoProgress: true, Calibrate: calibrate, EvenStripe: even})
	r.receiver = nmad.NewEngine(nmad.Config{NoAutoProgress: true})
	var err error
	if r.ga, err = r.sender.NewGateEndpoints(sEps[0], sEps[1]); err != nil {
		panic(err)
	}
	if r.gb, err = r.receiver.NewGateEndpoints(rEps[0], rEps[1]); err != nil {
		panic(err)
	}
	return r
}

// transfer moves msgs messages of size bytes, driving both engines.
func (r *rig) transfer(tagBase uint64, msgs, size int) {
	payload := make([]byte, size)
	for m := 0; m < msgs; m++ {
		tag := tagBase + uint64(m)
		rreq := r.gb.Irecv(tag)
		sreq := r.ga.Isend(tag, payload)
		for !(rreq.Test() && sreq.Test()) {
			r.sender.Tasks().Schedule(0)
			r.receiver.Tasks().Schedule(0)
		}
		if err := sreq.Err(); err != nil {
			panic(err)
		}
		if err := rreq.Err(); err != nil {
			panic(err)
		}
	}
}

func (r *rig) close() {
	r.sender.Close()
	r.receiver.Close()
}

// run executes the 8 MiB workload on a fresh rig and returns the
// modelled duration plus the gate for estimate inspection.
func run(calibrate, even bool) (simtime.Duration, *rig) {
	r := newRig(calibrate, even)
	r.transfer(100, 32, 256<<10)
	return simtime.Duration(r.f.Now()), r
}

func estRow(t *stats.Table, name string, rs nmad.RailStat, truth fabric.Capabilities) {
	t.AddRow(name,
		fmt.Sprintf("%.2f GB/s", rs.Caps.Bandwidth/1e9),
		fmt.Sprintf("%.2f GB/s", truth.Bandwidth/1e9),
		fmt.Sprintf("%.0f%%", 100*stats.RelError(rs.Caps.Bandwidth, truth.Bandwidth)),
		fmt.Sprintf("%v", rs.Caps.Latency),
		fmt.Sprintf("%v", truth.Latency),
		fmt.Sprintf("%d KiB", rs.Bytes>>10),
	)
}

func main() {
	fmt.Println("Online rail calibration: 8 MiB over an 8 GB/s + 1 GB/s rail pair")
	fmt.Println("(32 × 256 KiB messages, deterministic virtual clock)")
	fmt.Println()

	evenTime, er := run(false, true)
	er.close()
	oracleTime, or := run(false, false)
	or.close()
	calTime, cr := run(true, false)

	cmp := stats.Table{
		Title:  "modelled completion time",
		Header: []string{"configuration", "time", "vs oracle"},
	}
	cmp.AddRow("even striping (seed)", evenTime.String(),
		fmt.Sprintf("%.2fx", float64(evenTime)/float64(oracleTime)))
	cmp.AddRow("oracle capability-aware", oracleTime.String(), "1.00x")
	cmp.AddRow("calibrated (zero prior)", calTime.String(),
		fmt.Sprintf("%.2fx", float64(calTime)/float64(oracleTime)))
	fmt.Println(cmp.String())

	est := stats.Table{
		Title:  "calibrated estimates after 32 messages",
		Header: []string{"rail", "est bw", "true bw", "err", "est lat", "true lat", "bytes carried"},
	}
	rails := cr.ga.RailStats()
	estRow(&est, "fast", rails[0], fastCaps)
	estRow(&est, "slow", rails[1], slowCaps)
	fmt.Println(est.String())

	// Mid-stream shift: the rails swap effective bandwidths; the same
	// gate keeps running and must re-converge.
	degraded, upgraded := fastCaps, slowCaps
	degraded.Bandwidth, upgraded.Bandwidth = slowCaps.Bandwidth, fastCaps.Bandwidth
	for _, d := range cr.doms[0] {
		d.SetCapabilities(degraded)
	}
	for _, d := range cr.doms[1] {
		d.SetCapabilities(upgraded)
	}
	before := cr.ga.RailStats()
	shiftStart := cr.f.Now()
	cr.transfer(500, 64, 256<<10)
	shiftTime := simtime.Duration(cr.f.Now() - shiftStart)

	fmt.Println("rails swap bandwidths mid-stream (8↔1 GB/s); 64 more messages:")
	fmt.Println()
	re := stats.Table{
		Title:  "re-converged estimates",
		Header: []string{"rail", "est bw", "true bw", "err", "est lat", "true lat", "bytes carried"},
	}
	after := cr.ga.RailStats()
	shifted := [2]nmad.RailStat{after[0], after[1]}
	for i := range shifted {
		shifted[i].Bytes -= before[i].Bytes
	}
	estRow(&re, "was-fast (now 1 GB/s)", shifted[0], degraded)
	estRow(&re, "was-slow (now 8 GB/s)", shifted[1], upgraded)
	fmt.Println(re.String())
	fmt.Printf("16 MiB after the shift in %v — the split followed the hardware, no reconfiguration.\n", shiftTime)
	cr.close()
}
