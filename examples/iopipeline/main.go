// I/O pipeline: the paper's long-term vision (§VI) — one task engine
// optimizing communication AND storage. A file is read asynchronously,
// compressed by filter tasks on idle cores, and shipped to a peer over
// the communication engine, all progressing concurrently through the
// same PIOMan task engine while the main goroutine "computes".
//
// Run with: go run ./examples/iopipeline
package main

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"os"
	"time"

	"pioman/internal/core"
	"pioman/internal/iomgr"
	"pioman/internal/nmad"
	"pioman/internal/topology"
)

func main() {
	// One shared task engine drives storage, filters and networking.
	tasks := core.New(core.Config{Topology: topology.Host()})

	io := iomgr.New(iomgr.Config{Tasks: tasks})
	defer io.Close()
	sender := nmad.NewEngine(nmad.Config{Tasks: tasks, NoAutoProgress: true})
	receiver := nmad.NewEngine(nmad.Config{})
	defer sender.Close()
	defer receiver.Close()
	ds, dr := nmad.MemPair()
	gs, err := sender.NewGate(ds)
	if err != nil {
		panic(err)
	}
	gr, err := receiver.NewGate(dr)
	if err != nil {
		panic(err)
	}

	// Stage 0: create a source file.
	f, err := os.CreateTemp("", "iopipeline-*.dat")
	if err != nil {
		panic(err)
	}
	defer os.Remove(f.Name())
	defer f.Close()
	src := bytes.Repeat([]byte("the quick brown gopher schedules tasks "), 8192)
	if _, err := io.WriteAt(f, src, 0).Wait(); err != nil {
		panic(err)
	}

	start := time.Now()

	// Stage 1: asynchronous read from disk.
	buf := make([]byte, len(src))
	read := io.ReadAt(f, buf, 0)

	// Stage 2: once read, compress in a filter task on an idle core.
	var compressed bytes.Buffer
	filterDone := make(chan error, 1)
	go func() {
		if _, err := read.Wait(); err != nil {
			filterDone <- err
			return
		}
		req := io.Filter(func() error {
			zw := gzip.NewWriter(&compressed)
			if _, err := zw.Write(buf); err != nil {
				return err
			}
			return zw.Close()
		})
		_, err := req.Wait()
		filterDone <- err
	}()

	// Stage 3: receiver waits for the compressed payload.
	recvDone := make(chan []byte, 1)
	go func() {
		data, err := gr.Recv(1)
		if err != nil {
			panic(err)
		}
		recvDone <- data
	}()

	// Main goroutine: "compute" while the pipeline runs underneath.
	spins := 0
	for len(filterDone) == 0 {
		spins++
	}
	if err := <-filterDone; err != nil {
		panic(err)
	}
	if err := gs.Send(1, compressed.Bytes()); err != nil {
		panic(err)
	}
	shipped := <-recvDone

	fmt.Printf("pipeline: read %d B -> compressed %d B (%.1fx) -> shipped %d B in %v\n",
		len(src), compressed.Len(), float64(len(src))/float64(compressed.Len()),
		len(shipped), time.Since(start))
	fmt.Printf("main goroutine spun %d times while tasks progressed in the background\n", spins)
	reads, writes, filters := io.Stats()
	fmt.Printf("io manager: %d reads, %d writes, %d filter tasks\n", reads, writes, filters)
	st := sender.Stats()
	fmt.Printf("comm engine: %d messages, %d rendezvous\n", st.MsgsSent, st.RdvStarted)
}
