// Steal: topology-aware work stealing across sibling leaf queues.
//
// A producer pinned to CPU 0 parks a burst of unconstrained tasks on
// its own per-core queue (SubmitLocal — locality-first placement, the
// tasks' data is hot in CPU 0's cache). That is the imbalance the queue
// hierarchy cannot absorb by itself: without stealing, only CPU 0 ever
// scans that queue, and seven idle cores' scheduling keypoints are
// wasted. With stealing enabled, an out-of-work CPU walks outward —
// sibling core first, then across chips and NUMA nodes — and migrates a
// half-batch from the most backlogged victim, while pinned tasks are
// re-homed rather than executed off their CPU set.
//
// The example replays the same keypoint schedule (one ScheduleOne per
// CPU per round, the timer-tick cadence of the runtime stack) under all
// three steal policies on the paper's 8-core Borderline machine and
// prints the per-CPU execution spread and the steal counters.
//
// Run with: go run ./examples/steal
package main

import (
	"fmt"

	"pioman/internal/core"
	"pioman/internal/cpuset"
	"pioman/internal/stats"
	"pioman/internal/topology"
)

const backlog = 64

// runPolicy completes one imbalanced backlog under the given steal
// policy and returns the engine (for its stats) and the rounds taken.
func runPolicy(policy core.StealPolicy) (*core.Engine, int) {
	topo := topology.Borderline()
	e := core.New(core.Config{
		Topology: topo,
		Steal:    core.StealConfig{Policy: policy},
	})

	done := 0
	tasks := make([]core.Task, backlog)
	for i := range tasks {
		tasks[i].Fn = func(any) bool { done++; return true }
		// Unconstrained (empty CPU set) but parked on CPU 0's leaf:
		// legal anywhere, local by preference.
		if err := e.SubmitLocal(&tasks[i], 0); err != nil {
			panic(err)
		}
	}
	// One pinned task mixed in: thieves may carry it but never run it —
	// it is re-homed until CPU 0 itself picks it up.
	pinned := core.Task{
		Fn:     func(any) bool { done++; return true },
		CPUSet: cpuset.New(0),
	}
	if err := e.SubmitLocal(&pinned, 0); err != nil {
		panic(err)
	}

	rounds := 0
	for done < backlog+1 {
		for cpu := 0; cpu < topo.NCPUs; cpu++ {
			e.ScheduleOne(cpu)
		}
		rounds++
	}
	if pinned.LastCPU() != 0 {
		panic("pinned task escaped its CPU set")
	}
	return e, rounds
}

func main() {
	topo := topology.Borderline()
	fmt.Printf("machine: %s, producer pinned to CPU 0, %d unconstrained tasks + 1 pinned\n\n",
		topo.Name, backlog)

	table := stats.Table{
		Title:  "work stealing on an imbalanced backlog (1 keypoint per CPU per round)",
		Header: []string{"policy", "rounds", "steals", "hit-rate", "migrated", "exec-imbalance"},
		Caption: "steals = drains attempted on victims; migrated = stolen tasks executed\n" +
			"by a thief; exec-imbalance = max/mean executions per CPU (1.0 = even).",
	}
	for _, policy := range []core.StealPolicy{core.StealOff, core.StealSiblings, core.StealFullTree} {
		e, rounds := runPolicy(policy)
		s := e.Stats()
		perCPU := make([]float64, len(s.ExecPerCPU))
		for i, n := range s.ExecPerCPU {
			perCPU[i] = float64(n)
		}
		mig := stats.Migration{Attempts: s.StealAttempts, Hits: s.StealHits, Tasks: s.StealTasks}
		table.AddRow(
			policy.String(),
			fmt.Sprintf("%d", rounds),
			fmt.Sprintf("%d", mig.Attempts),
			fmt.Sprintf("%.2f", mig.HitRate()),
			fmt.Sprintf("%d", mig.Tasks),
			fmt.Sprintf("%.2f", stats.Imbalance(perCPU)),
		)

		if policy == core.StealFullTree {
			spread := stats.Table{
				Title:  "\nfull-tree per-CPU breakdown",
				Header: []string{"cpu", "executed", "of-which-stolen"},
			}
			for cpu, n := range s.ExecPerCPU {
				spread.AddRow(
					fmt.Sprintf("%d", cpu),
					fmt.Sprintf("%d", n),
					fmt.Sprintf("%d", s.StealPerCPU[cpu]),
				)
			}
			defer fmt.Print(spread.String())
		}
	}
	fmt.Print(table.String())
}
