// Quickstart: the PIOMan task engine in ~60 lines.
//
// A communication library delegates its internal work to the task
// engine: one-shot jobs (submitting a packet), repeated jobs (polling a
// network until something arrives), and offloaded jobs that should run
// on the nearest idle core. This example drives all three against a
// simulated 16-core NUMA machine.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"sync/atomic"

	"pioman/internal/core"
	"pioman/internal/cpuset"
	"pioman/internal/topology"
)

func main() {
	// Map the queue hierarchy onto the paper's 16-core machine (Fig. 3).
	topo := topology.Kwak()
	engine := core.New(core.Config{Topology: topo})
	fmt.Printf("machine: %s with %d task queues\n", topo.Name, len(engine.Queues()))

	// A one-shot task restricted to core 5: it lands on core 5's
	// per-core queue and only core 5 may run it.
	oneShot := &core.Task{
		Fn:     func(arg any) bool { fmt.Println("one-shot ran:", arg); return true },
		Arg:    "hello from the per-core queue",
		CPUSet: cpuset.New(5),
	}
	engine.MustSubmit(oneShot)
	if n := engine.Schedule(0); n != 0 {
		fmt.Println("unexpected: core 0 must not run core 5's task")
	}
	engine.Schedule(5) // core 5 reaches a scheduling hole and runs it
	fmt.Println("one-shot done:", oneShot.Done())

	// A repeated task: network polling. It is re-enqueued until the poll
	// succeeds — here, after five attempts.
	var polls atomic.Int32
	polling := &core.Task{
		Fn:      func(any) bool { return polls.Add(1) >= 5 },
		CPUSet:  cpuset.NewRange(4, 7), // any core sharing chip #1's L3
		Options: core.Repeat,
	}
	engine.MustSubmit(polling)
	for !polling.Done() {
		engine.Schedule(6) // an idle core of chip #1 keeps polling
	}
	fmt.Printf("polling task completed after %d polls on core %d\n",
		polls.Load(), polling.LastCPU())

	// Submission offload: find the idle core nearest to core 0 and pin
	// the task there; with core 2 idle, the task lands on core 2's queue.
	engine.SetIdle(2, true)
	offloaded := &core.Task{Fn: func(any) bool { return true }}
	if err := engine.SubmitToIdle(offloaded, 0); err != nil {
		panic(err)
	}
	fmt.Printf("offloaded task pinned to cpuset {%s}\n", offloaded.CPUSet)
	engine.Schedule(2)

	s := engine.Stats()
	fmt.Printf("engine stats: %d submitted, %d executions, %d repeat re-enqueues\n",
		s.Submitted, s.Executions, s.Requeues)
}
